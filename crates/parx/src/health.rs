//! Remote-peer failure-domain primitives: a hysteresis health state
//! machine and deterministic capped-exponential backoff.
//!
//! These are the pure, clock-free pieces of the ermesd cluster's fault
//! tolerance. A [`HealthTracker`] consumes a stream of probe/request
//! outcomes for one peer and answers "should I route work there?"
//! without flapping on a single dropped packet; a [`Backoff`] spaces
//! retries with jitter drawn from a seeded [SplitMix64] stream so a
//! chaos run's retry schedule replays exactly.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::faultpoint::SplitMix64;
use std::time::Duration;

/// Routing-relevant view of one remote peer.
///
/// The transitions are hysteretic in both directions: it takes
/// several consecutive failures to demote a peer and several
/// consecutive successes to promote it back, so one lost probe or one
/// lucky one cannot flip routing decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Healthy — preferred for dispatch.
    Up,
    /// Some recent failures — still dispatchable (it may only be
    /// slow), but a hedge or retry should prefer an `Up` peer.
    Suspect,
    /// Considered dead — skipped by the ring until it proves itself
    /// back up through consecutive probe successes.
    Down,
}

impl HealthState {
    /// Lower-case label for metrics and `/healthz` lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Up => "up",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
        }
    }
}

/// Per-peer hysteresis state machine over success/failure outcomes.
///
/// `Up --(suspect_after consecutive failures)--> Suspect
/// --(down_after total consecutive failures)--> Down
/// --(up_after consecutive successes)--> Up`. A success while
/// `Suspect` also requires `up_after` in a row to re-promote; any
/// failure resets the success streak and vice versa.
#[derive(Debug)]
pub struct HealthTracker {
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    suspect_after: u32,
    down_after: u32,
    up_after: u32,
}

impl HealthTracker {
    /// New tracker starting `Up`.
    ///
    /// `suspect_after` consecutive failures demote to `Suspect`,
    /// `down_after` (total, >= `suspect_after`) demote to `Down`, and
    /// `up_after` consecutive successes promote back to `Up`. Zeros
    /// are clamped to 1 so every threshold is reachable.
    #[must_use]
    pub fn new(suspect_after: u32, down_after: u32, up_after: u32) -> HealthTracker {
        let suspect_after = suspect_after.max(1);
        HealthTracker {
            state: HealthState::Up,
            consecutive_failures: 0,
            consecutive_successes: 0,
            suspect_after,
            down_after: down_after.max(suspect_after),
            up_after: up_after.max(1),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// True unless the peer is `Down`.
    #[must_use]
    pub fn is_dispatchable(&self) -> bool {
        self.state != HealthState::Down
    }

    /// Records a successful probe or request; returns the new state.
    pub fn record_success(&mut self) -> HealthState {
        self.consecutive_failures = 0;
        self.consecutive_successes = self.consecutive_successes.saturating_add(1);
        if self.state != HealthState::Up && self.consecutive_successes >= self.up_after {
            self.state = HealthState::Up;
        }
        self.state
    }

    /// Records a failed probe or request; returns the new state.
    pub fn record_failure(&mut self) -> HealthState {
        self.consecutive_successes = 0;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.down_after {
            self.state = HealthState::Down;
        } else if self.consecutive_failures >= self.suspect_after {
            self.state = HealthState::Suspect;
        }
        self.state
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based) sleeps between half and all of
/// `min(cap, base << n)`; the jitter draw comes from a SplitMix64
/// stream owned by this instance, so two `Backoff`s built with the
/// same `(base, cap, seed)` produce identical schedules — retries
/// under a seeded chaos plan replay bit-for-bit.
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    rng: SplitMix64,
}

impl Backoff {
    /// New schedule; `base_ms` is clamped up to 1 ms and `cap_ms` up
    /// to `base_ms`.
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        let base_ms = base_ms.max(1);
        Backoff {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            rng: SplitMix64(seed),
        }
    }

    /// Delay before retry `attempt` (0-based). Consumes one RNG draw
    /// per call, so the schedule depends only on call order.
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let full = self
            .base_ms
            .checked_shl(attempt.min(32))
            .unwrap_or(self.cap_ms)
            .min(self.cap_ms);
        let half = (full / 2).max(1);
        let jitter = self.rng.next() % (full - half + 1);
        Duration::from_millis(half + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_demotes_with_hysteresis() {
        let mut t = HealthTracker::new(1, 2, 2);
        assert_eq!(t.state(), HealthState::Up);
        assert_eq!(t.record_failure(), HealthState::Suspect);
        assert!(t.is_dispatchable());
        assert_eq!(t.record_failure(), HealthState::Down);
        assert!(!t.is_dispatchable());
        // One success is not enough to promote with up_after=2.
        assert_eq!(t.record_success(), HealthState::Down);
        assert_eq!(t.record_success(), HealthState::Up);
    }

    #[test]
    fn interleaved_outcomes_reset_streaks() {
        let mut t = HealthTracker::new(2, 3, 2);
        assert_eq!(t.record_failure(), HealthState::Up, "1 failure < 2");
        assert_eq!(t.record_success(), HealthState::Up);
        assert_eq!(t.record_failure(), HealthState::Up, "streak was reset");
        assert_eq!(t.record_failure(), HealthState::Suspect);
        // A lone success mid-recovery resets the failure streak but
        // does not promote; a following failure resets the successes.
        assert_eq!(t.record_success(), HealthState::Suspect);
        assert_eq!(
            t.record_failure(),
            HealthState::Suspect,
            "failures restart at 1"
        );
        assert_eq!(t.record_failure(), HealthState::Suspect);
        assert_eq!(t.record_failure(), HealthState::Down);
    }

    #[test]
    fn zero_thresholds_are_clamped() {
        let mut t = HealthTracker::new(0, 0, 0);
        assert_eq!(
            t.record_failure(),
            HealthState::Down,
            "down_after clamps to 1"
        );
        assert_eq!(t.record_success(), HealthState::Up, "up_after clamps to 1");
    }

    #[test]
    fn backoff_grows_to_cap_and_jitters_within_bounds() {
        let mut b = Backoff::new(10, 80, 7);
        for attempt in 0..12 {
            let full = (10u64 << attempt.min(32)).min(80);
            let d = b.delay(attempt).as_millis() as u64;
            assert!(d >= full / 2 && d <= full, "attempt {attempt}: {d} ms");
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(5, 200, seed);
            (0..8).map(|a| b.delay(a)).collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43));
    }

    #[test]
    fn backoff_shift_overflow_saturates_at_cap() {
        let mut b = Backoff::new(1, 500, 1);
        let d = b.delay(u32::MAX).as_millis() as u64;
        assert!((250..=500).contains(&d));
    }
}
