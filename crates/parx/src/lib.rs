//! Minimal deterministic fork-join parallelism.
//!
//! The exploration engine needs exactly one primitive: map a function
//! over a slice on `N` threads and get the results back **in input
//! order**, so that downstream reductions are bit-identical to the
//! serial code path at any thread count. This crate provides that
//! primitive on top of `std::thread::scope` — no work stealing, no
//! global pool, no external dependencies. Workers pull indices from a
//! shared atomic counter and send `(index, result)` pairs back over a
//! channel; the caller reassembles them positionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
pub mod faultpoint;
pub mod health;
mod pool;

pub use cancel::{CancelReason, CancelToken, Cancelled};
pub use faultpoint::Fault;
pub use health::{Backoff, HealthState, HealthTracker};
pub use pool::{PanicRecord, Pool, PoolFull};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of hardware threads available, at least 1.
#[must_use]
pub fn max_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means "all hardware
/// threads", anything else is taken literally.
#[must_use]
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        max_jobs()
    } else {
        jobs
    }
}

/// Parses a user-facing thread-count flag (`--jobs`, `--workers`): `0`
/// means "all hardware threads" and is kept as `0` so callers can
/// resolve it lazily with [`resolve_jobs`]; `None` yields `default`.
///
/// This is the single validated parsing path shared by every binary in
/// the workspace (`ermes`, `repro`, `loadgen`) so the flags cannot
/// drift apart in meaning.
///
/// # Errors
///
/// A human-readable message naming `flag` when `value` is not a
/// non-negative integer.
pub fn parse_jobs(flag: &str, value: Option<&str>, default: usize) -> Result<usize, String> {
    match value {
        None => Ok(default),
        Some(text) => text.trim().parse().map_err(|_| {
            format!("{flag} takes a non-negative integer (0 = all hardware threads), got `{text}`")
        }),
    }
}

/// Applies `f` to every element of `items` using up to `jobs` worker
/// threads and returns the results in input order.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` (or fewer than two
/// items) the map runs inline on the calling thread with zero
/// synchronization overhead — the two code paths produce identical
/// results because assembly is positional either way.
///
/// # Panics
///
/// Propagates the first panic raised inside `f` (the scope re-raises
/// worker panics on join).
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_jobs(jobs).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Carry the caller's trace position into the workers so spans opened
    // inside `f` parent under the caller's span instead of starting
    // disconnected per-thread roots.
    let ctx = trace::current_context();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                let _trace = trace::adopt(ctx);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &items[i]);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // If a worker panics its sender is dropped; `recv` then fails
        // once the rest drain and the scope re-raises the panic below.
        for _ in 0..n {
            match rx.recv() {
                Ok((i, r)) => slots[i] = Some(r),
                Err(_) => break,
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index was dispatched"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [0, 1, 2, 3, 8] {
            let parallel = par_map(jobs, &items, |_, &x| x * x);
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(4, &items, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items() {
        let items: Vec<usize> = (0..3).collect();
        assert_eq!(par_map(64, &items, |_, &x| x * 2), vec![0, 2, 4]);
    }

    #[test]
    fn zero_means_all_cores() {
        assert_eq!(resolve_jobs(0), max_jobs());
        assert_eq!(resolve_jobs(5), 5);
        assert!(max_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map(4, &items, |_, &x| {
            assert!(x != 9, "boom");
            x
        });
    }
}
