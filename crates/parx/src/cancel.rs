//! Cooperative cancellation for long-running jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the
//! party that *requests* cancellation (a server noticing a closed
//! connection, a deadline sweep) and the computation that must *observe*
//! it. The computation polls [`CancelToken::check`] at iteration
//! boundaries — Howard policy-improvement rounds, exploration-loop
//! iterations, per-target sweep steps — so cancellation latency is
//! bounded by one iteration of the innermost loop that polls, never by
//! the full run time of the job.
//!
//! The token can carry an optional **deadline**: once the instant
//! passes, any poll latches the token into the cancelled state with
//! [`CancelReason::Deadline`]. This makes deadline enforcement
//! independent of any external watcher thread — the computation cancels
//! itself the next time it looks.
//!
//! Built on one `AtomicU8` behind an `Arc`; no new dependencies.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a computation was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The request's deadline passed while the job was running.
    Deadline,
    /// The client hung up (EOF on the connection) before the result
    /// was ready; nobody is left to read the answer.
    Disconnected,
    /// The service is shutting down.
    Shutdown,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CancelReason::Deadline => "deadline expired",
            CancelReason::Disconnected => "client disconnected",
            CancelReason::Shutdown => "service shutting down",
        })
    }
}

/// The error a cancelled computation returns from its polling sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cancelled {
    /// Why the computation was told to stop.
    pub reason: CancelReason,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cancelled ({})", self.reason)
    }
}

impl std::error::Error for Cancelled {}

// Flag encoding: 0 = live, otherwise a CancelReason. First cancel wins;
// later requests (a deadline firing after a disconnect, say) are no-ops
// so the reported reason is the one that actually stopped the work.
const LIVE: u8 = 0;

fn encode(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::Deadline => 1,
        CancelReason::Disconnected => 2,
        CancelReason::Shutdown => 3,
    }
}

fn decode(flag: u8) -> Option<CancelReason> {
    match flag {
        1 => Some(CancelReason::Deadline),
        2 => Some(CancelReason::Disconnected),
        3 => Some(CancelReason::Shutdown),
        _ => None,
    }
}

struct TokenInner {
    flag: AtomicU8,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle shared between a canceller and a
/// cooperating computation.
///
/// ```
/// use parx::{CancelReason, CancelToken};
///
/// let token = CancelToken::new();
/// assert!(token.check().is_ok());
/// token.cancel(CancelReason::Disconnected);
/// assert_eq!(token.check().unwrap_err().reason, CancelReason::Disconnected);
/// ```
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A live token with no deadline; cancels only on explicit
    /// [`cancel`](CancelToken::cancel).
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::with_deadline(None)
    }

    /// A live token that self-cancels (reason [`CancelReason::Deadline`])
    /// on the first poll after `deadline` passes. `None` behaves like
    /// [`CancelToken::new`].
    #[must_use]
    pub fn with_deadline(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicU8::new(LIVE),
                deadline,
            }),
        }
    }

    /// Requests cancellation. The first reason to arrive sticks; later
    /// calls are no-ops.
    pub fn cancel(&self, reason: CancelReason) {
        let _ = self.inner.flag.compare_exchange(
            LIVE,
            encode(reason),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The reason this token was cancelled, if it has been. Latches the
    /// deadline into the flag when it has passed, so the reason observed
    /// here and by later polls agree.
    #[must_use]
    pub fn is_cancelled(&self) -> Option<CancelReason> {
        if let Some(reason) = decode(self.inner.flag.load(Ordering::Acquire)) {
            return Some(reason);
        }
        if self.inner.deadline.is_some_and(|d| Instant::now() > d) {
            self.cancel(CancelReason::Deadline);
            // Re-read: an explicit cancel may have raced us in; the
            // latched value is authoritative either way.
            return decode(self.inner.flag.load(Ordering::Acquire));
        }
        None
    }

    /// Polls the token: `Err(Cancelled)` once cancellation was requested
    /// or the deadline passed. This is the call loops sprinkle at their
    /// iteration boundaries.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] carrying the first [`CancelReason`] that fired.
    pub fn check(&self) -> Result<(), Cancelled> {
        match self.is_cancelled() {
            Some(reason) => Err(Cancelled { reason }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert_eq!(t.is_cancelled(), None);
        assert!(t.check().is_ok());
    }

    #[test]
    fn first_cancel_reason_wins() {
        let t = CancelToken::new();
        t.cancel(CancelReason::Disconnected);
        t.cancel(CancelReason::Shutdown);
        assert_eq!(t.is_cancelled(), Some(CancelReason::Disconnected));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel(CancelReason::Shutdown);
        assert_eq!(u.check().unwrap_err().reason, CancelReason::Shutdown);
    }

    #[test]
    fn deadline_latches_on_poll() {
        let t = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(t.is_cancelled(), Some(CancelReason::Deadline));
        // Latched: stays Deadline even if someone cancels afterwards.
        t.cancel(CancelReason::Disconnected);
        assert_eq!(t.is_cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn future_deadline_stays_live() {
        let t = CancelToken::with_deadline(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_beats_pending_deadline() {
        let t = CancelToken::with_deadline(Some(Instant::now() + Duration::from_secs(3600)));
        t.cancel(CancelReason::Disconnected);
        assert_eq!(t.is_cancelled(), Some(CancelReason::Disconnected));
    }

    #[test]
    fn cancelled_error_displays_reason() {
        let err = Cancelled {
            reason: CancelReason::Deadline,
        };
        assert_eq!(err.to_string(), "cancelled (deadline expired)");
    }
}
