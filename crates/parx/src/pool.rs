//! A fixed-size worker pool with a bounded job queue.
//!
//! [`par_map`](crate::par_map) covers fork-join parallelism; a long-running
//! service needs the complementary primitive: a fixed set of worker
//! threads draining a **bounded** queue of independent jobs, where the
//! bound is the admission-control knob — when the queue is full the
//! caller learns immediately ([`PoolFull`]) instead of piling up latent
//! work. Built on `Mutex` + `Condvar` only (the standard library has no
//! bounded multi-consumer channel), same zero-dependency rule as the rest
//! of the crate.
//!
//! Shutdown is *draining*: no new jobs are admitted, every job already
//! queued still runs, and the workers are joined before
//! [`Pool::shutdown`] returns — the guarantee a graceful daemon needs.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue was full (or the pool is shutting down) — the job was *not*
/// accepted and is handed back to the caller.
pub struct PoolFull(pub Box<dyn FnOnce() + Send + 'static>);

impl fmt::Debug for PoolFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PoolFull(..)")
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    /// Jobs currently executing on a worker (for drain accounting).
    running: usize,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signals workers that a job (or shutdown) is available.
    available: Condvar,
    /// Signals the drainer that a job finished.
    done: Condvar,
    capacity: usize,
}

/// A fixed pool of worker threads over a bounded job queue.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = parx::Pool::new(2, 8);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let hits = hits.clone();
///     pool.try_submit(move || {
///         hits.fetch_add(1, Ordering::SeqCst);
///     })
///     .expect("queue has room");
/// }
/// pool.shutdown(); // drains: all 8 jobs ran
/// assert_eq!(hits.load(Ordering::SeqCst), 8);
/// ```
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads (`0` = all hardware threads) sharing a
    /// queue bounded at `capacity` pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a pool that can never accept work).
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Pool {
        assert!(capacity > 0, "pool queue needs capacity");
        let workers = crate::resolve_jobs(workers);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                running: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            done: Condvar::new(),
            capacity,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// Offers a job to the queue without blocking.
    ///
    /// # Errors
    ///
    /// [`PoolFull`] (returning the job) when the queue is at capacity or
    /// the pool is shutting down — the admission-control signal.
    pub fn try_submit<F>(&self, job: F) -> Result<(), PoolFull>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut queue = self.shared.queue.lock().expect("pool poisoned");
        if queue.shutdown || queue.jobs.len() >= self.shared.capacity {
            return Err(PoolFull(Box::new(job)));
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Number of jobs waiting in the queue (excluding running ones).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("pool poisoned").jobs.len()
    }

    /// Number of jobs currently executing on a worker.
    #[must_use]
    pub fn running(&self) -> usize {
        self.shared.queue.lock().expect("pool poisoned").running
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Drains and stops the pool: rejects new submissions, waits for
    /// every queued and running job to finish, then joins the workers.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic on join.
    pub fn shutdown(self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool poisoned");
            queue.shutdown = true;
            // Wait for the queue to empty and every running job to end.
            while !queue.jobs.is_empty() || queue.running > 0 {
                queue = self.shared.done.wait(queue).expect("pool poisoned");
            }
        }
        self.shared.available.notify_all();
        for handle in self.workers {
            handle.join().expect("pool worker panicked");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    queue.running += 1;
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool poisoned");
            }
        };
        job();
        let mut queue = shared.queue.lock().expect("pool poisoned");
        queue.running -= 1;
        let idle = queue.jobs.is_empty() && queue.running == 0;
        drop(queue);
        if idle {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let pool = Pool::new(4, 64);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let count = Arc::clone(&count);
            pool.try_submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            })
            .expect("capacity 64");
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn rejects_when_full_and_returns_the_job() {
        // One worker, blocked on a gate, so the queue fills up.
        let pool = Pool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            entered_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opens");
        })
        .expect("room");
        entered_rx.recv().expect("worker picked up the blocker");
        // The worker is busy; two more fill the queue, the third bounces.
        pool.try_submit(|| {}).expect("slot 1");
        pool.try_submit(|| {}).expect("slot 2");
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let rejected = pool
            .try_submit(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            })
            .expect_err("queue is full");
        assert_eq!(pool.queue_depth(), 2);
        // The caller can still run the bounced job itself.
        (rejected.0)();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        gate_tx.send(()).expect("worker alive");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = Pool::new(1, 32);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let count = Arc::clone(&count);
            pool.try_submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                count.fetch_add(1, Ordering::SeqCst);
            })
            .expect("room");
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 20, "drain ran everything");
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let pool = Pool::new(2, 4);
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        assert!(shared.queue.lock().expect("sane").shutdown);
    }

    #[test]
    fn zero_workers_means_all_cores() {
        let pool = Pool::new(0, 4);
        assert_eq!(pool.workers(), crate::max_jobs());
        pool.shutdown();
    }
}
