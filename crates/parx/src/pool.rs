//! A fixed-size worker pool with a bounded job queue.
//!
//! [`par_map`](crate::par_map) covers fork-join parallelism; a long-running
//! service needs the complementary primitive: a fixed set of worker
//! threads draining a **bounded** queue of independent jobs, where the
//! bound is the admission-control knob — when the queue is full the
//! caller learns immediately ([`PoolFull`]) instead of piling up latent
//! work. Built on `Mutex` + `Condvar` only (the standard library has no
//! bounded multi-consumer channel), same zero-dependency rule as the rest
//! of the crate.
//!
//! Shutdown is *draining*: no new jobs are admitted, every job already
//! queued still runs, and the workers are joined before
//! [`Pool::shutdown`] returns — the guarantee a graceful daemon needs.
//!
//! Jobs are **panic-isolated**: each runs under `catch_unwind`, so a
//! panicking job takes down neither its worker's siblings nor the jobs
//! queued behind it. The worker that caught the panic retires (its
//! stack just unwound through arbitrary job state) and a fresh
//! replacement is spawned *before* the retiring worker releases its
//! drain accounting, so pool capacity never dips and a draining
//! [`Pool::shutdown`] can never strand queued jobs. Each caught panic
//! is recorded as a [`PanicRecord`] and counted in
//! [`Pool::worker_restarts`] for the service's metrics.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue was full (or the pool is shutting down) — the job was *not*
/// accepted and is handed back to the caller.
pub struct PoolFull(pub Box<dyn FnOnce() + Send + 'static>);

impl fmt::Debug for PoolFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PoolFull(..)")
    }
}

/// One caught job panic: which worker caught it and the stringified
/// payload, for diagnostics and the shutdown report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicRecord {
    /// Index of the worker (stable across respawns: the replacement
    /// inherits the slot) that was running the job.
    pub worker: usize,
    /// The panic payload rendered as text, or a placeholder when the
    /// payload was not a string.
    pub payload: String,
}

/// Renders a caught panic payload for humans: the common `&str` /
/// `String` payloads verbatim, anything exotic as a placeholder.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    /// Jobs currently executing on a worker (for drain accounting).
    running: usize,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signals workers that a job (or shutdown) is available.
    available: Condvar,
    /// Signals the drainer that a job finished.
    done: Condvar,
    capacity: usize,
    /// Current worker handles, indexed by worker slot. A worker that
    /// catches a panic replaces its own entry with its successor's
    /// handle and parks its old handle in `retired`.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Handles of workers that retired after catching a panic; joined
    /// (and long since exited) at shutdown.
    retired: Mutex<Vec<JoinHandle<()>>>,
    /// Panics caught in the worker loop, oldest first.
    panics: Mutex<Vec<PanicRecord>>,
    /// Total workers respawned after catching a panic.
    restarts: AtomicU64,
}

/// A fixed pool of worker threads over a bounded job queue.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = parx::Pool::new(2, 8);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let hits = hits.clone();
///     pool.try_submit(move || {
///         hits.fetch_add(1, Ordering::SeqCst);
///     })
///     .expect("queue has room");
/// }
/// pool.shutdown(); // drains: all 8 jobs ran
/// assert_eq!(hits.load(Ordering::SeqCst), 8);
/// ```
pub struct Pool {
    shared: Arc<Shared>,
    worker_count: usize,
}

impl Pool {
    /// Spawns `workers` threads (`0` = all hardware threads) sharing a
    /// queue bounded at `capacity` pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a pool that can never accept work).
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Pool {
        assert!(capacity > 0, "pool queue needs capacity");
        let workers = crate::resolve_jobs(workers);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                running: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            done: Condvar::new(),
            capacity,
            handles: Mutex::new(Vec::with_capacity(workers)),
            retired: Mutex::new(Vec::new()),
            panics: Mutex::new(Vec::new()),
            restarts: AtomicU64::new(0),
        });
        {
            let mut handles = shared.handles.lock().expect("pool poisoned");
            for index in 0..workers {
                handles.push(spawn_worker(&shared, index));
            }
        }
        Pool {
            shared,
            worker_count: workers,
        }
    }

    /// Offers a job to the queue without blocking.
    ///
    /// # Errors
    ///
    /// [`PoolFull`] (returning the job) when the queue is at capacity or
    /// the pool is shutting down — the admission-control signal.
    pub fn try_submit<F>(&self, job: F) -> Result<(), PoolFull>
    where
        F: FnOnce() + Send + 'static,
    {
        // Capture the submitter's trace position now; the worker adopts
        // it so the job's spans land in the submitting request's tree.
        let ctx = trace::current_context();
        let job = move || {
            let _trace = trace::adopt(ctx);
            job();
        };
        let mut queue = self.shared.queue.lock().expect("pool poisoned");
        if queue.shutdown || queue.jobs.len() >= self.shared.capacity {
            return Err(PoolFull(Box::new(job)));
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Number of jobs waiting in the queue (excluding running ones).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("pool poisoned").jobs.len()
    }

    /// Number of jobs currently executing on a worker.
    #[must_use]
    pub fn running(&self) -> usize {
        self.shared.queue.lock().expect("pool poisoned").running
    }

    /// Number of worker threads (the configured size; respawns keep it
    /// constant).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Number of worker threads currently alive. Transiently this can
    /// read low while a replacement worker is being spawned, but a
    /// healthy pool always returns to [`Pool::workers`].
    #[must_use]
    pub fn alive_workers(&self) -> usize {
        self.shared
            .handles
            .lock()
            .expect("pool poisoned")
            .iter()
            .filter(|handle| !handle.is_finished())
            .count()
    }

    /// Total workers respawned after a job panicked on them.
    #[must_use]
    pub fn worker_restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::Relaxed)
    }

    /// The panics caught in the worker loop so far, oldest first.
    #[must_use]
    pub fn caught_panics(&self) -> Vec<PanicRecord> {
        self.shared.panics.lock().expect("pool poisoned").clone()
    }

    /// Drains and stops the pool: rejects new submissions, waits for
    /// every queued and running job to finish, then joins the workers.
    ///
    /// # Panics
    ///
    /// If a worker thread itself died of an uncaught panic (job panics
    /// are caught in the loop, so this means a bug in the pool), panics
    /// with a message naming the worker and its panic payload.
    pub fn shutdown(self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool poisoned");
            queue.shutdown = true;
            // Wait for the queue to empty and every running job to end.
            while !queue.jobs.is_empty() || queue.running > 0 {
                queue = self.shared.done.wait(queue).expect("pool poisoned");
            }
        }
        self.shared.available.notify_all();
        let handles = std::mem::take(&mut *self.shared.handles.lock().expect("pool poisoned"));
        for (index, handle) in handles.into_iter().enumerate() {
            if let Err(payload) = handle.join() {
                panic!(
                    "pool worker {index} panicked outside a job: {}",
                    payload_text(payload.as_ref())
                );
            }
        }
        let retired = std::mem::take(&mut *self.shared.retired.lock().expect("pool poisoned"));
        for handle in retired {
            // Retired workers caught their job's panic and returned
            // normally; a join error here is a pool bug.
            if let Err(payload) = handle.join() {
                panic!(
                    "retired pool worker panicked outside a job: {}",
                    payload_text(payload.as_ref())
                );
            }
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, index: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || worker_loop(&shared, index))
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    queue.running += 1;
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool poisoned");
            }
        };
        // Isolate the job: a panic is caught here, recorded, and the
        // worker retires in favour of a fresh replacement. AssertUnwindSafe
        // is sound because neither the boxed job nor anything it captures
        // is observed again after an unwind.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = crate::faultpoint::hit("worker.job");
            job();
        }));
        let panicked = match caught {
            Ok(()) => false,
            Err(payload) => {
                shared
                    .panics
                    .lock()
                    .expect("pool poisoned")
                    .push(PanicRecord {
                        worker: index,
                        payload: payload_text(payload.as_ref()),
                    });
                shared.restarts.fetch_add(1, Ordering::Relaxed);
                // Respawn BEFORE releasing the drain accounting below:
                // between the two, `running` still counts this job, so a
                // concurrent shutdown cannot conclude the pool is idle
                // while its worker set is one short — queued jobs always
                // have a live worker coming for them.
                let replacement = spawn_worker(shared, index);
                let mut handles = shared.handles.lock().expect("pool poisoned");
                if let Some(slot) = handles.get_mut(index) {
                    let old = std::mem::replace(slot, replacement);
                    shared.retired.lock().expect("pool poisoned").push(old);
                } else {
                    // Shutdown already took the handles; no successor is
                    // needed (the queue is drained) — retire both.
                    shared
                        .retired
                        .lock()
                        .expect("pool poisoned")
                        .push(replacement);
                }
                true
            }
        };
        let mut queue = shared.queue.lock().expect("pool poisoned");
        queue.running -= 1;
        let idle = queue.jobs.is_empty() && queue.running == 0;
        drop(queue);
        if idle {
            shared.done.notify_all();
        }
        if panicked {
            // Retire: the replacement spawned above owns this slot now.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let pool = Pool::new(4, 64);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let count = Arc::clone(&count);
            pool.try_submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            })
            .expect("capacity 64");
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn rejects_when_full_and_returns_the_job() {
        // One worker, blocked on a gate, so the queue fills up.
        let pool = Pool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            entered_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opens");
        })
        .expect("room");
        entered_rx.recv().expect("worker picked up the blocker");
        // The worker is busy; two more fill the queue, the third bounces.
        pool.try_submit(|| {}).expect("slot 1");
        pool.try_submit(|| {}).expect("slot 2");
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let rejected = pool
            .try_submit(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            })
            .expect_err("queue is full");
        assert_eq!(pool.queue_depth(), 2);
        // The caller can still run the bounced job itself.
        (rejected.0)();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        gate_tx.send(()).expect("worker alive");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = Pool::new(1, 32);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let count = Arc::clone(&count);
            pool.try_submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                count.fetch_add(1, Ordering::SeqCst);
            })
            .expect("room");
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 20, "drain ran everything");
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let pool = Pool::new(2, 4);
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        assert!(shared.queue.lock().expect("sane").shutdown);
    }

    #[test]
    fn zero_workers_means_all_cores() {
        let pool = Pool::new(0, 4);
        assert_eq!(pool.workers(), crate::max_jobs());
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_poison_the_pool() {
        let pool = Pool::new(2, 32);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let count = Arc::clone(&count);
            pool.try_submit(move || {
                assert!(i != 7, "job 7 blows up");
                count.fetch_add(1, Ordering::SeqCst);
            })
            .expect("room");
        }
        pool.shutdown(); // must not re-raise: the panic was isolated
        assert_eq!(count.load(Ordering::SeqCst), 19, "the other 19 ran");
    }

    #[test]
    fn caught_panics_are_recorded_and_counted() {
        let pool = Pool::new(1, 8);
        pool.try_submit(|| panic!("first failure")).expect("room");
        pool.try_submit(|| {}).expect("room");
        pool.try_submit(|| panic!("second failure")).expect("room");
        // Wait for the queue to drain so the records are in.
        while pool.queue_depth() > 0 || pool.running() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.worker_restarts(), 2);
        let panics = pool.caught_panics();
        assert_eq!(panics.len(), 2);
        assert_eq!(panics[0].worker, 0);
        assert_eq!(panics[0].payload, "first failure");
        assert_eq!(panics[1].payload, "second failure");
        pool.shutdown();
    }

    #[test]
    fn respawned_worker_keeps_serving_jobs() {
        let pool = Pool::new(1, 64);
        pool.try_submit(|| panic!("kill the only worker"))
            .expect("room");
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let count = Arc::clone(&count);
            pool.try_submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            })
            .expect("room");
        }
        while pool.queue_depth() > 0 || pool.running() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            count.load(Ordering::SeqCst),
            10,
            "replacement worker drained the queue"
        );
        assert_eq!(pool.worker_restarts(), 1);
        pool.shutdown();
    }

    #[test]
    fn alive_workers_recovers_after_a_panic() {
        let pool = Pool::new(2, 8);
        assert_eq!(pool.alive_workers(), 2);
        pool.try_submit(|| panic!("die")).expect("room");
        while pool.worker_restarts() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The replacement is installed before the retiree exits, so the
        // slot count never drops below the configured size for long.
        for _ in 0..100 {
            if pool.alive_workers() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.alive_workers(), 2);
        pool.shutdown();
    }

    #[test]
    fn non_string_payloads_get_a_placeholder() {
        let pool = Pool::new(1, 4);
        pool.try_submit(|| std::panic::panic_any(42_u32))
            .expect("room");
        while pool.worker_restarts() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            pool.caught_panics()[0].payload,
            "<non-string panic payload>"
        );
        pool.shutdown();
    }
}
