//! The paper's Section 3 soundness claim, property-tested: the TMG
//! analytic model predicts execution. For random systems, the simulator's
//! steady-state cycle time must equal `analyze(lower_to_tmg(sys))`, and
//! the deadlock verdicts must coincide.

use proptest::prelude::*;
use sysgraph::{lower_to_tmg, ProcessId, SystemGraph};
use tmg::Verdict;

/// Random layered system with optional initialized feedback channel.
fn build_system(
    widths: (usize, usize),
    lats: Vec<u8>,
    edges: Vec<(u8, u8)>,
    feedback: bool,
) -> SystemGraph {
    let mut it = lats.into_iter().cycle();
    let mut next_lat = move || u64::from(it.next().unwrap_or(0) % 4) + 1;
    let mut sys = SystemGraph::new();
    let src = sys.add_process("src", next_lat());
    let l1: Vec<ProcessId> = (0..widths.0.max(1))
        .map(|i| sys.add_process(format!("a{i}"), next_lat()))
        .collect();
    let l2: Vec<ProcessId> = (0..widths.1.max(1))
        .map(|i| sys.add_process(format!("b{i}"), next_lat()))
        .collect();
    let snk = sys.add_process("snk", next_lat());
    for (i, &p) in l1.iter().enumerate() {
        sys.add_channel(format!("s{i}"), src, p, next_lat())
            .expect("valid");
    }
    let mut seen = std::collections::HashSet::new();
    for (k, (a, b)) in edges.into_iter().enumerate() {
        let p = l1[a as usize % l1.len()];
        let q = l2[b as usize % l2.len()];
        if seen.insert((p, q)) {
            sys.add_channel(format!("m{k}"), p, q, next_lat())
                .expect("valid");
        }
    }
    for (i, &q) in l2.iter().enumerate() {
        if sys.get_order(q).is_empty() {
            sys.add_channel(format!("fill{i}"), l1[i % l1.len()], q, next_lat())
                .expect("valid");
        }
        sys.add_channel(format!("o{i}"), q, snk, next_lat())
            .expect("valid");
    }
    if feedback {
        // An initialized feedback channel from a layer-2 node back to a
        // layer-1 node (reconvergent loop, live thanks to the token).
        sys.add_channel_with_tokens("fb", l2[0], l1[0], 1, 1)
            .expect("valid");
    }
    sys
}

fn arb_system() -> impl Strategy<Value = SystemGraph> {
    (
        (1usize..4, 1usize..4),
        proptest::collection::vec(any::<u8>(), 4..24),
        proptest::collection::vec((any::<u8>(), any::<u8>()), 1..8),
        any::<bool>(),
    )
        .prop_map(|(w, l, e, fb)| build_system(w, l, e, fb))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model and execution agree on deadlock.
    #[test]
    fn deadlock_verdicts_coincide(sys in arb_system()) {
        let analytic = tmg::analyze(lower_to_tmg(&sys).tmg()).is_deadlock();
        let executed = pnsim::simulate_timing(&sys, 40).deadlocked;
        prop_assert_eq!(analytic, executed);
    }

    /// Model and execution agree on steady-state cycle time.
    #[test]
    fn cycle_times_coincide(sys in arb_system()) {
        if let Verdict::Live { cycle_time, .. } = tmg::analyze(lower_to_tmg(&sys).tmg()) {
            let outcome = pnsim::simulate_timing(&sys, 500);
            let measured = outcome.estimated_cycle_time().expect("live system");
            let expected = cycle_time.to_f64();
            prop_assert!(
                (measured - expected).abs() <= expected * 0.02 + 0.05,
                "measured {} vs model {}", measured, expected
            );
        }
    }

    /// Under the algorithm's ordering, execution never deadlocks either.
    #[test]
    fn ordered_systems_execute_cleanly(sys in arb_system()) {
        let solution = chanorder::order_channels(&sys);
        let mut ordered = sys.clone();
        solution.ordering.apply_to(&mut ordered).expect("valid ordering");
        let outcome = pnsim::simulate_timing(&ordered, 60);
        prop_assert!(!outcome.deadlocked);
    }
}
