//! The simulator's engine loop shows up in the span journal: one
//! `pnsim` span per `run`, carrying the event count and the outcome, so
//! `--trace-summary` and the daemon's `/trace` cover simulation too.

use pnsim::{run, FixedLatency, SimConfig};
use sysgraph::{MotivatingExample, SystemGraph};

fn simulate(sys: &SystemGraph) -> bool {
    let kernels: Vec<Box<dyn pnsim::Kernel<u32>>> = sys
        .process_ids()
        .map(|p| {
            let outputs = sys.put_order(p).len();
            Box::new(FixedLatency::new(sys.process(p).latency(), outputs, 0u32)) as _
        })
        .collect();
    let (outcome, _) = run(
        sys,
        kernels,
        SimConfig {
            max_iterations: Some(16),
            ..SimConfig::default()
        },
    );
    outcome.deadlocked
}

#[test]
fn engine_runs_record_a_span_with_events_and_outcome() {
    trace::set_enabled(true);

    let mut sys = SystemGraph::new();
    let a = sys.add_process("a", 1);
    let b = sys.add_process("b", 2);
    sys.add_channel("x", a, b, 1).expect("valid");
    assert!(!simulate(&sys));

    let deadlock = MotivatingExample::new();
    assert!(simulate(&deadlock.system));

    let json = trace::chrome_trace();
    assert!(json.contains(r#""name":"pnsim""#), "span recorded: {json}");
    assert!(json.contains(r#""outcome":"ok""#), "live run: {json}");
    assert!(
        json.contains(r#""outcome":"deadlock""#),
        "deadlocked run: {json}"
    );
    assert!(json.contains(r#""events":"#), "event count: {json}");
}
