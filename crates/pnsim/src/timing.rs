//! Pure-timing simulation: performance without payloads.
//!
//! The convenience layer the analyses compare against: every process runs
//! a [`FixedLatency`] kernel taken from the system's process latencies, so
//! the run measures exactly what the TMG model predicts.

use crate::engine::{run, SimConfig, SimOutcome};
use crate::kernel::{FixedLatency, Kernel};
use sysgraph::SystemGraph;

/// Runs a pure-timing simulation of `system` for `iterations` sink
/// iterations and reports the outcome.
///
/// # Examples
///
/// Validate the paper's motivating numbers by execution rather than
/// analysis:
///
/// ```
/// use pnsim::simulate_timing;
/// use sysgraph::MotivatingExample;
///
/// let mut ex = MotivatingExample::new();
/// ex.optimal_ordering().apply_to(&mut ex.system)?;
/// let outcome = simulate_timing(&ex.system, 300);
/// let ct = outcome.estimated_cycle_time().expect("live system");
/// assert!((ct - 12.0).abs() < 1e-9);
/// # Ok::<(), sysgraph::SysGraphError>(())
/// ```
#[must_use]
pub fn simulate_timing(system: &SystemGraph, iterations: u64) -> SimOutcome<u8> {
    let kernels: Vec<Box<dyn Kernel<u8>>> = system
        .process_ids()
        .map(|p| {
            Box::new(FixedLatency::new(
                system.process(p).latency(),
                system.put_order(p).len(),
                0u8,
            )) as Box<dyn Kernel<u8>>
        })
        .collect();
    let (outcome, _) = run(
        system,
        kernels,
        SimConfig {
            max_iterations: Some(iterations),
            record_sink_inputs: false,
            ..SimConfig::default()
        },
    );
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysgraph::MotivatingExample;

    #[test]
    fn deadlock_ordering_deadlocks_in_execution() {
        let ex = MotivatingExample::new();
        let outcome = simulate_timing(&ex.system, 50);
        assert!(outcome.deadlocked);
    }

    #[test]
    fn timing_matches_tmg_analysis_on_both_live_orderings() {
        for (ordering, expected) in [(0, 20.0), (1, 12.0)] {
            let mut ex = MotivatingExample::new();
            let ord = if ordering == 0 {
                ex.suboptimal_ordering()
            } else {
                ex.optimal_ordering()
            };
            ord.apply_to(&mut ex.system).expect("valid");
            let outcome = simulate_timing(&ex.system, 300);
            let ct = outcome.estimated_cycle_time().expect("live");
            assert!(
                (ct - expected).abs() < 1e-9,
                "ordering {ordering}: simulated {ct}, expected {expected}"
            );
        }
    }
}
