//! Stall statistics: where the cycles go.
//!
//! Section 2 of the paper: "a shrewd order reduces the number of clock
//! cycles that a component circuit spends waiting for a successful
//! communication". This module quantifies exactly that from a timing
//! simulation: per process, how many cycles were *useful* (computation
//! plus its share of channel transfers) versus *stalled* in the I/O
//! states' self-loops.

use crate::engine::SimOutcome;
use sysgraph::{ProcessId, SystemGraph};

/// Stall breakdown of one process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessStall {
    /// The process.
    pub process: ProcessId,
    /// Iterations it completed.
    pub iterations: u64,
    /// Cycles spent computing or transferring per the model
    /// (`iterations × (latency + Σ incident channel latencies)`).
    pub busy_cycles: u64,
    /// Cycles stalled waiting on channel partners.
    pub stall_cycles: u64,
    /// `stall_cycles / (busy + stall)`, in `0..=1`.
    pub stall_fraction: f64,
}

/// Per-process stall statistics for a completed run.
///
/// The busy time of a process per iteration is its computation latency
/// plus the latency of every channel it participates in (each transfer
/// occupies both endpoints in the blocking protocol); everything else up
/// to the end of the run is stall. Processes that never completed an
/// iteration report a stall fraction of 1.
///
/// # Examples
///
/// The paper's claim on its own example: the optimal ordering stalls less
/// than the suboptimal one.
///
/// ```
/// use pnsim::{simulate_timing, stall_report};
/// use sysgraph::MotivatingExample;
///
/// let total_stall = |ex: &MotivatingExample| -> u64 {
///     let outcome = simulate_timing(&ex.system, 200);
///     stall_report(&ex.system, &outcome).iter().map(|s| s.stall_cycles).sum()
/// };
/// let mut slow = MotivatingExample::new();
/// slow.suboptimal_ordering().apply_to(&mut slow.system)?;
/// let mut fast = MotivatingExample::new();
/// fast.optimal_ordering().apply_to(&mut fast.system)?;
/// assert!(total_stall(&fast) < total_stall(&slow));
/// # Ok::<(), sysgraph::SysGraphError>(())
/// ```
#[must_use]
pub fn stall_report<T>(system: &SystemGraph, outcome: &SimOutcome<T>) -> Vec<ProcessStall> {
    let horizon = outcome.time;
    system
        .process_ids()
        .map(|p| {
            let iterations = outcome.iterations[p.index()];
            let per_iteration: u64 = system.process(p).latency()
                + system
                    .get_order(p)
                    .iter()
                    .chain(system.put_order(p))
                    .map(|&c| system.channel(c).latency())
                    .sum::<u64>();
            let busy_cycles = (iterations * per_iteration).min(horizon);
            let stall_cycles = horizon - busy_cycles;
            ProcessStall {
                process: p,
                iterations,
                busy_cycles,
                stall_cycles,
                stall_fraction: if horizon == 0 {
                    0.0
                } else {
                    stall_cycles as f64 / horizon as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::simulate_timing;
    use sysgraph::MotivatingExample;

    #[test]
    fn balanced_pipeline_has_low_stall() {
        let mut sys = SystemGraph::new();
        let a = sys.add_process("a", 8);
        let b = sys.add_process("b", 8);
        sys.add_channel("x", a, b, 1).expect("valid");
        let outcome = simulate_timing(&sys, 200);
        let report = stall_report(&sys, &outcome);
        // Both processes run the same 10-cycle loop: minimal stalling.
        for s in &report {
            assert!(s.stall_fraction < 0.15, "{:?}", s);
        }
    }

    #[test]
    fn mismatched_pipeline_stalls_the_fast_stage() {
        let mut sys = SystemGraph::new();
        let fast = sys.add_process("fast", 1);
        let slow = sys.add_process("slow", 29);
        sys.add_channel("x", fast, slow, 1).expect("valid");
        let outcome = simulate_timing(&sys, 200);
        let report = stall_report(&sys, &outcome);
        let fast_stall = report[fast.index()].stall_fraction;
        let slow_stall = report[slow.index()].stall_fraction;
        assert!(
            fast_stall > 0.8,
            "the fast stage must wait most of the time: {fast_stall}"
        );
        assert!(
            slow_stall < 0.1,
            "the bottleneck barely waits: {slow_stall}"
        );
    }

    #[test]
    fn optimal_ordering_stalls_less_on_the_motivating_example() {
        let total = |ordering: sysgraph::ChannelOrdering| -> u64 {
            let mut ex = MotivatingExample::new();
            ordering.apply_to(&mut ex.system).expect("valid");
            let outcome = simulate_timing(&ex.system, 200);
            stall_report(&ex.system, &outcome)
                .iter()
                .map(|s| s.stall_cycles)
                .sum()
        };
        let ex = MotivatingExample::new();
        assert!(total(ex.optimal_ordering()) < total(ex.suboptimal_ordering()));
    }

    #[test]
    fn report_covers_every_process() {
        let ex = MotivatingExample::new();
        let mut sys = ex.system.clone();
        ex.optimal_ordering().apply_to(&mut sys).expect("valid");
        let outcome = simulate_timing(&sys, 50);
        let report = stall_report(&sys, &outcome);
        assert_eq!(report.len(), sys.process_count());
        for s in &report {
            assert!(s.busy_cycles + s.stall_cycles == outcome.time);
            assert!((0.0..=1.0).contains(&s.stall_fraction));
        }
    }

    use sysgraph::SystemGraph;
}
