//! Process kernels: the behaviour executed in the computation phase.
//!
//! The simulator is generic over the payload type `T`; each process owns a
//! [`Kernel`] that is invoked once per iteration with one input item per
//! input channel (in `get` order) and must return one output item per
//! output channel (in `put` order) plus the latency of the computation
//! phase for this iteration.

/// Result of one kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutput<T> {
    /// One item per output channel, in the process's `put` order.
    pub outputs: Vec<T>,
    /// Computation-phase latency for this iteration, in cycles.
    pub latency: u64,
}

/// Behaviour of a process's computation phase.
pub trait Kernel<T> {
    /// Executes one iteration. `inputs` holds one item per input channel
    /// in the process's current `get` order (empty for sources).
    fn execute(&mut self, inputs: &[T]) -> KernelOutput<T>;
}

/// A kernel with fixed latency that replicates a constant item to every
/// output — the pure-timing behaviour used when only performance matters.
#[derive(Debug, Clone)]
pub struct FixedLatency<T> {
    latency: u64,
    output_count: usize,
    fill: T,
}

impl<T: Clone> FixedLatency<T> {
    /// Creates a fixed-latency kernel emitting `fill` on each of
    /// `output_count` outputs.
    pub fn new(latency: u64, output_count: usize, fill: T) -> Self {
        FixedLatency {
            latency,
            output_count,
            fill,
        }
    }
}

impl<T: Clone> Kernel<T> for FixedLatency<T> {
    fn execute(&mut self, _inputs: &[T]) -> KernelOutput<T> {
        KernelOutput {
            outputs: vec![self.fill.clone(); self.output_count],
            latency: self.latency,
        }
    }
}

/// A kernel defined by a closure, for ad-hoc processes.
pub struct FnKernel<T, F>
where
    F: FnMut(&[T]) -> KernelOutput<T>,
{
    f: F,
    _marker: std::marker::PhantomData<fn(&[T])>,
}

impl<T, F> FnKernel<T, F>
where
    F: FnMut(&[T]) -> KernelOutput<T>,
{
    /// Wraps a closure as a kernel.
    pub fn new(f: F) -> Self {
        FnKernel {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T, F> Kernel<T> for FnKernel<T, F>
where
    F: FnMut(&[T]) -> KernelOutput<T>,
{
    fn execute(&mut self, inputs: &[T]) -> KernelOutput<T> {
        (self.f)(inputs)
    }
}

impl<T, F> std::fmt::Debug for FnKernel<T, F>
where
    F: FnMut(&[T]) -> KernelOutput<T>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnKernel").finish_non_exhaustive()
    }
}

/// A source kernel producing items from an iterator; when the iterator is
/// exhausted the simulator treats the process as finished.
#[derive(Debug, Clone)]
pub struct SequenceSource<I> {
    items: I,
    latency: u64,
    output_count: usize,
}

impl<I> SequenceSource<I> {
    /// Creates a source that emits each item of `items` (replicated to
    /// every output channel) with the given per-iteration latency.
    pub fn new(items: I, latency: u64, output_count: usize) -> Self {
        SequenceSource {
            items,
            latency,
            output_count,
        }
    }
}

/// Marker output used by sources that have run out of data: the engine
/// checks [`Kernel::execute`]'s output count; an empty vector from a
/// process with outputs stops that process cleanly.
impl<T: Clone, I: Iterator<Item = T>> Kernel<T> for SequenceSource<I> {
    fn execute(&mut self, _inputs: &[T]) -> KernelOutput<T> {
        match self.items.next() {
            Some(item) => KernelOutput {
                outputs: vec![item; self.output_count],
                latency: self.latency,
            },
            None => KernelOutput {
                outputs: Vec::new(),
                latency: self.latency,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_replicates() {
        let mut k = FixedLatency::new(5, 3, 7u32);
        let out = k.execute(&[1, 2]);
        assert_eq!(out.latency, 5);
        assert_eq!(out.outputs, vec![7, 7, 7]);
    }

    #[test]
    fn fn_kernel_wraps_closures() {
        let mut k = FnKernel::new(|inputs: &[u32]| KernelOutput {
            outputs: vec![inputs.iter().sum::<u32>()],
            latency: 1,
        });
        assert_eq!(k.execute(&[2, 3]).outputs, vec![5]);
    }

    #[test]
    fn sequence_source_drains() {
        let mut k = SequenceSource::new(vec![10u32, 20].into_iter(), 2, 1);
        assert_eq!(k.execute(&[]).outputs, vec![10]);
        assert_eq!(k.execute(&[]).outputs, vec![20]);
        assert!(k.execute(&[]).outputs.is_empty());
    }
}
