//! The per-process FSM view — Fig. 2(b) of the paper.
//!
//! A commercial HLS tool compiles the three-phase SystemC process into a
//! cyclic finite state machine: one state per `get`/`put` statement (each
//! with a self-loop to stall while the channel partner is not ready), a
//! chain of computation states whose length is the micro-architecture
//! latency, and a reset state. This module derives that FSM from a
//! [`SystemGraph`] process so the structure can be inspected, printed, and
//! reproduced for the paper's Fig. 2(b).

use std::fmt;
use sysgraph::{ChannelId, ProcessId, SystemGraph};

/// One state of a process FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// The reset state entered on `rst`.
    Reset,
    /// An input state: blocking `get` on the channel, stalling in place
    /// (self-loop) until the producer side is ready.
    Input(ChannelId),
    /// One step of the computation chain (`index` in `0..latency`).
    Compute {
        /// Position within the computation chain.
        index: u64,
        /// Total chain length (the micro-architecture latency).
        of: u64,
    },
    /// An output state: blocking `put` on the channel, stalling in place
    /// until the consumer side is ready.
    Output(ChannelId),
}

impl FsmState {
    /// True if the state has a stall self-loop (I/O states only).
    #[must_use]
    pub fn has_self_loop(&self) -> bool {
        matches!(self, FsmState::Input(_) | FsmState::Output(_))
    }
}

/// The cyclic FSM of one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessFsm {
    process: ProcessId,
    name: String,
    states: Vec<FsmState>,
}

impl ProcessFsm {
    /// States in execution order; after the last state the machine loops
    /// back to the first non-reset state.
    #[must_use]
    pub fn states(&self) -> &[FsmState] {
        &self.states
    }

    /// The process this FSM implements.
    #[must_use]
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Number of I/O states (each with a stall self-loop).
    #[must_use]
    pub fn io_state_count(&self) -> usize {
        self.states.iter().filter(|s| s.has_self_loop()).count()
    }

    /// Length of the computation chain.
    #[must_use]
    pub fn compute_state_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, FsmState::Compute { .. }))
            .count()
    }
}

impl fmt::Display for ProcessFsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FSM of {} ({} states):", self.name, self.states.len())?;
        for (i, s) in self.states.iter().enumerate() {
            match s {
                FsmState::Reset => writeln!(f, "  s{i}: reset")?,
                FsmState::Input(c) => writeln!(f, "  s{i}: get {c} [stall self-loop]")?,
                FsmState::Compute { index, of } => {
                    writeln!(f, "  s{i}: compute step {}/{of}", index + 1)?
                }
                FsmState::Output(c) => writeln!(f, "  s{i}: put {c} [stall self-loop]")?,
            }
        }
        write!(f, "  (loops back to s1)")
    }
}

/// Derives the FSM of process `p` from the system's current ordering —
/// the structure a commercial HLS tool would generate (Fig. 2(b)).
///
/// # Panics
///
/// Panics if `p` does not belong to `system`.
///
/// # Examples
///
/// ```
/// use pnsim::process_fsm;
/// use sysgraph::{proc_index, MotivatingExample};
///
/// let ex = MotivatingExample::new();
/// let fsm = process_fsm(&ex.system, ex.processes[proc_index::P2]);
/// // P2: 1 input channel + 3 output channels = 4 I/O states...
/// assert_eq!(fsm.io_state_count(), 4);
/// // ...and a computation chain as long as its latency (5).
/// assert_eq!(fsm.compute_state_count(), 5);
/// ```
#[must_use]
pub fn process_fsm(system: &SystemGraph, p: ProcessId) -> ProcessFsm {
    let mut states = vec![FsmState::Reset];
    for &c in system.get_order(p) {
        states.push(FsmState::Input(c));
    }
    let latency = system.process(p).latency();
    for index in 0..latency {
        states.push(FsmState::Compute { index, of: latency });
    }
    for &c in system.put_order(p) {
        states.push(FsmState::Output(c));
    }
    ProcessFsm {
        process: p,
        name: system.process(p).name().to_string(),
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysgraph::{proc_index, MotivatingExample};

    #[test]
    fn p2_fsm_matches_listing_1_structure() {
        let ex = MotivatingExample::new();
        let fsm = process_fsm(&ex.system, ex.processes[proc_index::P2]);
        // Reset + 1 get + 5 compute + 3 puts.
        assert_eq!(fsm.states().len(), 1 + 1 + 5 + 3);
        assert!(matches!(fsm.states()[0], FsmState::Reset));
        assert!(matches!(fsm.states()[1], FsmState::Input(_)));
        assert!(matches!(fsm.states()[7], FsmState::Output(_)));
    }

    #[test]
    fn io_states_have_self_loops_and_compute_does_not() {
        let ex = MotivatingExample::new();
        let fsm = process_fsm(&ex.system, ex.processes[proc_index::P6]);
        for s in fsm.states() {
            match s {
                FsmState::Input(_) | FsmState::Output(_) => assert!(s.has_self_loop()),
                _ => assert!(!s.has_self_loop()),
            }
        }
    }

    #[test]
    fn display_renders_every_state() {
        let ex = MotivatingExample::new();
        let fsm = process_fsm(&ex.system, ex.processes[proc_index::P2]);
        let text = fsm.to_string();
        assert!(text.contains("FSM of P2"));
        assert!(text.contains("stall self-loop"));
        assert!(text.contains("compute step 5/5"));
    }

    #[test]
    fn fsm_follows_the_current_ordering() {
        let mut ex = MotivatingExample::new();
        let before = process_fsm(&ex.system, ex.processes[proc_index::P2]);
        ex.suboptimal_ordering()
            .apply_to(&mut ex.system)
            .expect("valid");
        let after = process_fsm(&ex.system, ex.processes[proc_index::P2]);
        assert_ne!(before, after, "reordering changes the output states");
        assert_eq!(before.io_state_count(), after.io_state_count());
    }
}
