//! The discrete-event engine: blocking rendezvous semantics, cycle counts.
//!
//! Executes a [`SystemGraph`] with one [`Kernel`] per process under the
//! same semantics the paper's interface libraries implement in hardware: a
//! transfer on a channel starts only when the producer has reached the
//! corresponding `put` *and* the consumer has reached the corresponding
//! `get`; it occupies the channel's latency in cycles; both sides resume
//! when it completes. Channels pre-loaded with initial items serve their
//! first `get`s without a producer (latency still applies).
//!
//! The engine is deterministic: ties are broken by process index.

use crate::kernel::{Kernel, KernelOutput};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use sysgraph::{ProcessId, SystemGraph};

/// Simulation controls.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Hard wall-clock stop, in cycles.
    pub max_cycles: u64,
    /// Stop once every sink process (or every process, if there are no
    /// sinks) has completed this many iterations.
    pub max_iterations: Option<u64>,
    /// Record the items consumed by sink processes.
    pub record_sink_inputs: bool,
    /// Record every channel transfer interval (for waveform export; see
    /// [`transfers_to_vcd`](crate::transfers_to_vcd)).
    pub record_transfers: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: u64::MAX / 4,
            max_iterations: Some(1_000),
            record_sink_inputs: true,
            record_transfers: false,
        }
    }
}

/// One completed channel transfer: the channel was busy in
/// `[start, done)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// The channel that carried the item.
    pub channel: sysgraph::ChannelId,
    /// Cycle at which the transfer began.
    pub start: u64,
    /// Cycle at which both sides resumed.
    pub done: u64,
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome<T> {
    /// Time of the last processed event.
    pub time: u64,
    /// True if execution stalled with every process blocked mid-iteration
    /// (the system-level deadlock of Section 2 of the paper).
    pub deadlocked: bool,
    /// True if the run hit `max_cycles` before its stop condition.
    pub timed_out: bool,
    /// Completed iterations per process.
    pub iterations: Vec<u64>,
    /// Items consumed by each sink process (when recording is enabled).
    pub sink_inputs: Vec<(ProcessId, Vec<T>)>,
    /// Iteration completion times per sink process.
    pub sink_iteration_times: Vec<(ProcessId, Vec<u64>)>,
    /// Channel transfer intervals (when `record_transfers` is set).
    pub transfers: Vec<TransferRecord>,
}

impl<T> SimOutcome<T> {
    /// Steady-state cycle time estimated from the first sink's iteration
    /// completion times, discarding the first half as transient.
    #[must_use]
    pub fn estimated_cycle_time(&self) -> Option<f64> {
        let times = &self.sink_iteration_times.first()?.1;
        if self.deadlocked || times.len() < 4 {
            return None;
        }
        let last = times.len() - 1;
        let mid = last / 2;
        Some((times[last] - times[mid]) as f64 / (last - mid) as f64)
    }
}

/// Program counter of a process within its three-phase iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    Get(usize),
    Compute,
    Put(usize),
    Done,
}

#[derive(Debug)]
struct ChannelState<T> {
    pending_put: Option<(u64, T)>,
    pending_get: Option<u64>,
    /// FIFO contents (availability time, item); pre-loaded items are
    /// available at time 0. Only used when `capacity > 0`.
    items: VecDeque<(u64, T)>,
    /// Times at which FIFO slots become free. The FIFO starts full.
    free_slots: VecDeque<u64>,
    /// FIFO depth = the channel's initial token count; 0 means a pure
    /// rendezvous channel.
    capacity: u64,
}

/// Runs `system` with the given kernels (indexed by process) and returns
/// the outcome together with the kernels (so callers can recover state
/// captured inside them).
///
/// # Panics
///
/// Panics if `kernels.len() != system.process_count()`, or if a kernel
/// returns a wrong number of outputs (sources may return an empty vector
/// to signal end of data).
///
/// # Examples
///
/// ```
/// use pnsim::{run, FixedLatency, SimConfig};
/// use sysgraph::SystemGraph;
///
/// let mut sys = SystemGraph::new();
/// let src = sys.add_process("src", 1);
/// let snk = sys.add_process("snk", 2);
/// sys.add_channel("x", src, snk, 3)?;
/// let kernels: Vec<Box<dyn pnsim::Kernel<u32>>> = vec![
///     Box::new(FixedLatency::new(1, 1, 42)),
///     Box::new(FixedLatency::new(2, 0, 0)),
/// ];
/// let (outcome, _kernels) = run(&sys, kernels, SimConfig {
///     max_iterations: Some(50),
///     ..SimConfig::default()
/// });
/// assert!(!outcome.deadlocked);
/// // Each item needs get(3) + compute(2) on the sink loop, but the
/// // source loop needs 1 + 3 = 4; the slower loop (5) paces the system.
/// let ct = outcome.estimated_cycle_time().expect("live");
/// assert!((ct - 5.0).abs() < 1e-9);
/// # Ok::<(), sysgraph::SysGraphError>(())
/// ```
#[allow(clippy::too_many_lines)]
pub fn run<T: Clone + Default>(
    system: &SystemGraph,
    mut kernels: Vec<Box<dyn Kernel<T>>>,
    config: SimConfig,
) -> (SimOutcome<T>, Vec<Box<dyn Kernel<T>>>) {
    assert_eq!(
        kernels.len(),
        system.process_count(),
        "one kernel per process"
    );
    let n = system.process_count();
    let sim_span = trace::span("pnsim");
    trace::attr("processes", n);
    trace::attr("channels", system.channel_count());
    let mut pc: Vec<Pc> = system
        .process_ids()
        .map(|p| {
            if system.get_order(p).is_empty() {
                Pc::Compute
            } else {
                Pc::Get(0)
            }
        })
        .collect();
    let mut inputs_gathered: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    let mut pending_outputs: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    let mut iterations = vec![0u64; n];
    // Channels pre-loaded with initial tokens behave as k-deep FIFOs that
    // start full of reset values (`T::default()`), like the feedback
    // registers of a real design; uninitialized channels are pure
    // rendezvous.
    let mut channels: Vec<ChannelState<T>> = system
        .channel_ids()
        .map(|c| {
            let k = system.channel(c).initial_tokens();
            ChannelState {
                pending_put: None,
                pending_get: None,
                items: (0..k).map(|_| (0u64, T::default())).collect(),
                free_slots: VecDeque::new(),
                capacity: k,
            }
        })
        .collect();
    let sinks: Vec<usize> = system.sinks().map(|p| p.index()).collect();
    let is_sink = {
        let mut v = vec![false; n];
        for &s in &sinks {
            v[s] = true;
        }
        v
    };
    let mut sink_inputs: Vec<(ProcessId, Vec<T>)> = sinks
        .iter()
        .map(|&s| (ProcessId::from_index(s), Vec::new()))
        .collect();
    let mut sink_iteration_times: Vec<(ProcessId, Vec<u64>)> = sinks
        .iter()
        .map(|&s| (ProcessId::from_index(s), Vec::new()))
        .collect();

    let mut events: BinaryHeap<Reverse<(u64, usize)>> = (0..n).map(|p| Reverse((0, p))).collect();
    let mut now = 0u64;
    let mut event_count = 0u64;
    let mut timed_out = false;
    let mut transfers: Vec<TransferRecord> = Vec::new();

    // Stop group: sinks, or all processes when there are no sinks.
    let stop_group: Vec<usize> = if sinks.is_empty() {
        (0..n).collect()
    } else {
        sinks.clone()
    };
    let stop_reached = |iterations: &[u64], pc: &[Pc]| -> bool {
        config.max_iterations.is_some_and(|target| {
            stop_group
                .iter()
                .all(|&p| iterations[p] >= target || pc[p] == Pc::Done)
        })
    };

    'engine: while let Some(Reverse((t, p))) = events.pop() {
        event_count += 1;
        if t > config.max_cycles {
            timed_out = true;
            break;
        }
        now = now.max(t);
        // Advance process `p` as far as it can go at time `t`.
        let mut time = t;
        loop {
            match pc[p] {
                Pc::Done => break,
                Pc::Get(i) => {
                    let order = system.get_order(ProcessId::from_index(p));
                    if i == order.len() {
                        pc[p] = Pc::Compute;
                        continue;
                    }
                    let c = order[i];
                    let lat = system.channel(c).latency();
                    let ch = &mut channels[c.index()];
                    if let Some((ta, item)) = ch.items.pop_front() {
                        // FIFO channel with an item ready.
                        let done = time.max(ta) + lat;
                        if config.record_transfers {
                            transfers.push(TransferRecord {
                                channel: c,
                                start: done - lat,
                                done,
                            });
                        }
                        inputs_gathered[p].push(item);
                        pc[p] = Pc::Get(i + 1);
                        events.push(Reverse((done, p)));
                        // The slot frees when the transfer completes; a
                        // parked producer fills it immediately.
                        if let Some((tp, pitem)) = ch.pending_put.take() {
                            let avail = done.max(tp);
                            ch.items.push_back((avail, pitem));
                            let q = system.channel(c).from().index();
                            let Pc::Put(j) = pc[q] else {
                                unreachable!("producer must be parked on a put")
                            };
                            pc[q] = Pc::Put(j + 1);
                            events.push(Reverse((avail, q)));
                        } else {
                            ch.free_slots.push_back(done);
                        }
                        break;
                    } else if let Some((tp, item)) = ch.pending_put.take() {
                        // Pure rendezvous (or a drained FIFO): meet the
                        // producer directly.
                        let done = time.max(tp) + lat;
                        if config.record_transfers {
                            transfers.push(TransferRecord {
                                channel: c,
                                start: done - lat,
                                done,
                            });
                        }
                        inputs_gathered[p].push(item);
                        pc[p] = Pc::Get(i + 1);
                        events.push(Reverse((done, p)));
                        let q = system.channel(c).from().index();
                        let Pc::Put(j) = pc[q] else {
                            unreachable!("producer must be parked on a put")
                        };
                        pc[q] = Pc::Put(j + 1);
                        events.push(Reverse((done, q)));
                        break;
                    }
                    ch.pending_get = Some(time);
                    break; // parked
                }
                Pc::Compute => {
                    let inputs = std::mem::take(&mut inputs_gathered[p]);
                    if config.record_sink_inputs && is_sink[p] {
                        if let Some(rec) = sink_inputs.iter_mut().find(|(pid, _)| pid.index() == p)
                        {
                            rec.1.extend(inputs.iter().cloned());
                        }
                    }
                    let KernelOutput { outputs, latency } = kernels[p].execute(&inputs);
                    let put_count = system.put_order(ProcessId::from_index(p)).len();
                    if outputs.len() != put_count {
                        assert!(
                            outputs.is_empty(),
                            "kernel returned {} outputs for {} channels",
                            outputs.len(),
                            put_count
                        );
                        // Source exhausted: the process retires.
                        pc[p] = Pc::Done;
                        break;
                    }
                    pending_outputs[p] = outputs;
                    pc[p] = Pc::Put(0);
                    events.push(Reverse((time + latency, p)));
                    break;
                }
                Pc::Put(i) => {
                    let order = system.put_order(ProcessId::from_index(p));
                    if i == order.len() {
                        // Iteration wrap.
                        iterations[p] += 1;
                        if is_sink[p] {
                            if let Some(rec) = sink_iteration_times
                                .iter_mut()
                                .find(|(pid, _)| pid.index() == p)
                            {
                                rec.1.push(time);
                            }
                        }
                        if stop_reached(&iterations, &pc) {
                            break 'engine;
                        }
                        pc[p] = if system.get_order(ProcessId::from_index(p)).is_empty() {
                            Pc::Compute
                        } else {
                            Pc::Get(0)
                        };
                        continue;
                    }
                    let c = order[i];
                    let lat = system.channel(c).latency();
                    let item = pending_outputs[p][i].clone();
                    let ch = &mut channels[c.index()];
                    if ch.capacity > 0 {
                        // FIFO channel: the put completes as soon as a
                        // slot is free; the transfer latency is paid on
                        // the consumer side.
                        if let Some(ts) = ch.free_slots.pop_front() {
                            let avail = time.max(ts);
                            pc[p] = Pc::Put(i + 1);
                            events.push(Reverse((avail, p)));
                            if let Some(tg) = ch.pending_get.take() {
                                // Serve the parked consumer from the FIFO.
                                let done = avail.max(tg) + lat;
                                if config.record_transfers {
                                    transfers.push(TransferRecord {
                                        channel: c,
                                        start: done - lat,
                                        done,
                                    });
                                }
                                let q = system.channel(c).to().index();
                                let Pc::Get(j) = pc[q] else {
                                    unreachable!("consumer must be parked on a get")
                                };
                                inputs_gathered[q].push(item);
                                pc[q] = Pc::Get(j + 1);
                                events.push(Reverse((done, q)));
                                ch.free_slots.push_back(done);
                            } else {
                                ch.items.push_back((avail, item));
                            }
                            break;
                        }
                        ch.pending_put = Some((time, item));
                        break; // parked: the FIFO is full
                    }
                    if let Some(tg) = ch.pending_get.take() {
                        let done = time.max(tg) + lat;
                        if config.record_transfers {
                            transfers.push(TransferRecord {
                                channel: c,
                                start: done - lat,
                                done,
                            });
                        }
                        pc[p] = Pc::Put(i + 1);
                        events.push(Reverse((done, p)));
                        // Deliver to the parked consumer.
                        let q = system.channel(c).to().index();
                        let Pc::Get(j) = pc[q] else {
                            unreachable!("consumer must be parked on a get")
                        };
                        inputs_gathered[q].push(item);
                        pc[q] = Pc::Get(j + 1);
                        events.push(Reverse((done, q)));
                        break;
                    }
                    ch.pending_put = Some((time, item));
                    break; // parked
                }
            }
        }
        let _ = &mut time;
    }

    let any_done = pc.contains(&Pc::Done);
    let stop = stop_reached(&iterations, &pc);
    let deadlocked = !stop && !timed_out && !any_done && events.is_empty();

    trace::attr("events", event_count);
    trace::attr("cycles", now);
    trace::attr(
        "outcome",
        if deadlocked {
            "deadlock"
        } else if timed_out {
            "timeout"
        } else {
            "ok"
        },
    );
    drop(sim_span);

    transfers.sort_by_key(|t| (t.start, t.channel));
    (
        SimOutcome {
            time: now,
            deadlocked,
            timed_out,
            iterations,
            sink_inputs,
            sink_iteration_times,
            transfers,
        },
        kernels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{FixedLatency, FnKernel, SequenceSource};

    fn pipeline() -> SystemGraph {
        let mut sys = SystemGraph::new();
        let src = sys.add_process("src", 1);
        let mid = sys.add_process("mid", 4);
        let snk = sys.add_process("snk", 1);
        sys.add_channel("a", src, mid, 1).expect("valid");
        sys.add_channel("b", mid, snk, 1).expect("valid");
        sys
    }

    #[test]
    fn pipeline_throughput_matches_bottleneck() {
        let sys = pipeline();
        let kernels: Vec<Box<dyn Kernel<u64>>> = vec![
            Box::new(FixedLatency::new(1, 1, 0)),
            Box::new(FixedLatency::new(4, 1, 0)),
            Box::new(FixedLatency::new(1, 0, 0)),
        ];
        let (out, _) = run(
            &sys,
            kernels,
            SimConfig {
                max_iterations: Some(200),
                ..SimConfig::default()
            },
        );
        assert!(!out.deadlocked);
        // mid's loop: get(1) + compute(4) + put(1) = 6 cycles per item.
        let ct = out.estimated_cycle_time().expect("live");
        assert!((ct - 6.0).abs() < 1e-9, "got {ct}");
    }

    #[test]
    fn data_flows_in_order() {
        let sys = pipeline();
        let kernels: Vec<Box<dyn Kernel<u64>>> = vec![
            Box::new(SequenceSource::new(1..=5u64, 1, 1)),
            Box::new(FnKernel::new(|ins: &[u64]| KernelOutput {
                outputs: vec![ins[0] * 10],
                latency: 2,
            })),
            Box::new(FixedLatency::new(1, 0, 0)),
        ];
        let (out, _) = run(
            &sys,
            kernels,
            SimConfig {
                max_iterations: Some(100),
                ..SimConfig::default()
            },
        );
        assert_eq!(out.sink_inputs.len(), 1);
        assert_eq!(out.sink_inputs[0].1, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn motivating_deadlock_order_stalls_execution() {
        let ex = sysgraph::MotivatingExample::new();
        let kernels: Vec<Box<dyn Kernel<u8>>> = ex
            .system
            .process_ids()
            .map(|p| {
                Box::new(FixedLatency::new(
                    ex.system.process(p).latency(),
                    ex.system.put_order(p).len(),
                    0u8,
                )) as Box<dyn Kernel<u8>>
            })
            .collect();
        let (out, _) = run(
            &ex.system,
            kernels,
            SimConfig {
                max_iterations: Some(10),
                ..SimConfig::default()
            },
        );
        assert!(out.deadlocked, "the Section 2 ordering must deadlock");
    }

    #[test]
    fn optimal_order_runs_at_cycle_time_12() {
        let mut ex = sysgraph::MotivatingExample::new();
        ex.optimal_ordering()
            .apply_to(&mut ex.system)
            .expect("valid ordering");
        let kernels: Vec<Box<dyn Kernel<u8>>> = ex
            .system
            .process_ids()
            .map(|p| {
                Box::new(FixedLatency::new(
                    ex.system.process(p).latency(),
                    ex.system.put_order(p).len(),
                    0u8,
                )) as Box<dyn Kernel<u8>>
            })
            .collect();
        let (out, _) = run(
            &ex.system,
            kernels,
            SimConfig {
                max_iterations: Some(400),
                ..SimConfig::default()
            },
        );
        assert!(!out.deadlocked);
        let ct = out.estimated_cycle_time().expect("live");
        assert!((ct - 12.0).abs() < 1e-9, "simulated {ct}, model says 12");
    }

    #[test]
    fn suboptimal_order_runs_at_cycle_time_20() {
        let mut ex = sysgraph::MotivatingExample::new();
        ex.suboptimal_ordering()
            .apply_to(&mut ex.system)
            .expect("valid ordering");
        let kernels: Vec<Box<dyn Kernel<u8>>> = ex
            .system
            .process_ids()
            .map(|p| {
                Box::new(FixedLatency::new(
                    ex.system.process(p).latency(),
                    ex.system.put_order(p).len(),
                    0u8,
                )) as Box<dyn Kernel<u8>>
            })
            .collect();
        let (out, _) = run(
            &ex.system,
            kernels,
            SimConfig {
                max_iterations: Some(400),
                ..SimConfig::default()
            },
        );
        let ct = out.estimated_cycle_time().expect("live");
        assert!((ct - 20.0).abs() < 1e-9, "simulated {ct}, model says 20");
    }

    #[test]
    fn finite_source_finishes_without_deadlock_flag() {
        let sys = pipeline();
        let kernels: Vec<Box<dyn Kernel<u64>>> = vec![
            Box::new(SequenceSource::new(0..3u64, 1, 1)),
            Box::new(FixedLatency::new(1, 1, 0)),
            Box::new(FixedLatency::new(1, 0, 0)),
        ];
        let (out, _) = run(
            &sys,
            kernels,
            SimConfig {
                max_iterations: Some(1_000),
                ..SimConfig::default()
            },
        );
        assert!(!out.deadlocked);
        assert_eq!(out.iterations[2], 3, "sink consumed all three items");
    }

    #[test]
    fn max_cycles_times_out_runaway_systems() {
        let sys = pipeline();
        let kernels: Vec<Box<dyn Kernel<u64>>> = vec![
            Box::new(FixedLatency::new(1, 1, 0)),
            Box::new(FixedLatency::new(1, 1, 0)),
            Box::new(FixedLatency::new(1, 0, 0)),
        ];
        let (out, _) = run(
            &sys,
            kernels,
            SimConfig {
                max_cycles: 50,
                max_iterations: None,
                record_sink_inputs: false,
                record_transfers: false,
            },
        );
        assert!(out.timed_out);
    }
}
