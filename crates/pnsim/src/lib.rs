//! Cycle-accurate simulation of blocking-rendezvous process networks.
//!
//! This crate is the reproduction's stand-in for SystemC simulation and
//! RTL execution: it runs a [`sysgraph::SystemGraph`] under exactly the
//! semantics the DAC'14 ERMES paper ascribes to HLS interface libraries —
//! each process iterates through ordered blocking `get`s, a computation of
//! some latency, and ordered blocking `put`s; a channel transfer starts
//! when both sides are ready and takes the channel latency (Fig. 2(b)).
//!
//! Three layers:
//!
//! - [`run`]: the generic discrete-event engine, carrying real payloads
//!   through the channels via per-process [`Kernel`]s — used by the
//!   functional MPEG-2 pipeline.
//! - [`simulate_timing`]: pure-timing runs with latencies from the system
//!   model, used to validate the TMG analyses by execution.
//! - [`process_fsm`]: the per-process FSM view of Fig. 2(b).
//!
//! # Examples
//!
//! Executing the motivating example's deadlocking order actually hangs:
//!
//! ```
//! use pnsim::simulate_timing;
//! use sysgraph::MotivatingExample;
//!
//! let ex = MotivatingExample::new();
//! let outcome = simulate_timing(&ex.system, 10);
//! assert!(outcome.deadlocked);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fsm;
mod kernel;
mod stats;
mod timing;
mod vcd;

pub use engine::{run, SimConfig, SimOutcome, TransferRecord};
pub use fsm::{process_fsm, FsmState, ProcessFsm};
pub use kernel::{FixedLatency, FnKernel, Kernel, KernelOutput, SequenceSource};
pub use stats::{stall_report, ProcessStall};
pub use timing::simulate_timing;
pub use vcd::transfers_to_vcd;
