//! VCD (IEEE 1364 value-change dump) export of channel activity.
//!
//! Turns the transfer intervals recorded by the engine into a waveform
//! that any VCD viewer (GTKWave & co.) renders: one one-bit wire per
//! channel, high while a transfer occupies it — the picture a designer
//! would pull from an RTL simulation of the interface primitives.

use crate::engine::TransferRecord;
use std::fmt::Write as _;
use sysgraph::SystemGraph;

/// Generates the VCD identifier for wire `i` (printable ASCII 33..=126,
/// base-94, as the standard allows).
fn wire_id(mut i: usize) -> String {
    let mut out = String::new();
    loop {
        out.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    out
}

/// Renders the recorded transfers as a VCD document.
///
/// Wires carry the channel names from `system`; time is in cycles
/// (`$timescale 1 ns` by convention of 1 GHz from the paper's Table 1).
///
/// # Examples
///
/// ```
/// use pnsim::{run, transfers_to_vcd, FixedLatency, SimConfig};
/// use sysgraph::SystemGraph;
///
/// let mut sys = SystemGraph::new();
/// let a = sys.add_process("a", 1);
/// let b = sys.add_process("b", 1);
/// sys.add_channel("x", a, b, 3)?;
/// let kernels: Vec<Box<dyn pnsim::Kernel<u8>>> = vec![
///     Box::new(FixedLatency::new(1, 1, 0)),
///     Box::new(FixedLatency::new(1, 0, 0)),
/// ];
/// let (outcome, _) = run(&sys, kernels, SimConfig {
///     max_iterations: Some(3),
///     record_transfers: true,
///     ..SimConfig::default()
/// });
/// let vcd = transfers_to_vcd(&sys, &outcome.transfers);
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains(" x "));
/// # Ok::<(), sysgraph::SysGraphError>(())
/// ```
#[must_use]
pub fn transfers_to_vcd(system: &SystemGraph, transfers: &[TransferRecord]) -> String {
    let mut out = String::new();
    out.push_str("$date reproduction run $end\n");
    out.push_str("$version pnsim 0.1 $end\n");
    out.push_str("$timescale 1 ns $end\n");
    out.push_str("$scope module system $end\n");
    for c in system.channel_ids() {
        let _ = writeln!(
            out,
            "$var wire 1 {} {} $end",
            wire_id(c.index()),
            system.channel(c).name()
        );
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Edge list: (time, rising?, wire index).
    let mut edges: Vec<(u64, bool, usize)> = Vec::with_capacity(transfers.len() * 2);
    for t in transfers {
        edges.push((t.start, true, t.channel.index()));
        edges.push((t.done, false, t.channel.index()));
    }
    edges.sort_by_key(|&(time, rising, wire)| (time, rising, wire));

    out.push_str("#0\n$dumpvars\n");
    for c in system.channel_ids() {
        let _ = writeln!(out, "0{}", wire_id(c.index()));
    }
    out.push_str("$end\n");

    let mut current = 0u64;
    // Occupancy counts: back-to-back transfers on one channel must not
    // glitch low (FIFO channels can overlap transfers).
    let mut level = vec![0i64; system.channel_count()];
    let mut emitted_high = vec![false; system.channel_count()];
    for (time, rising, wire) in edges {
        if time != current {
            let _ = writeln!(out, "#{time}");
            current = time;
        }
        level[wire] += if rising { 1 } else { -1 };
        let high = level[wire] > 0;
        if high != emitted_high[wire] {
            emitted_high[wire] = high;
            let _ = writeln!(out, "{}{}", u8::from(high), wire_id(wire));
        }
    }
    if current < u64::MAX {
        let _ = writeln!(out, "#{}", current.max(1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, SimConfig};
    use crate::kernel::{FixedLatency, Kernel};

    fn pipeline_vcd() -> (SystemGraph, String, Vec<TransferRecord>) {
        let mut sys = SystemGraph::new();
        let a = sys.add_process("a", 2);
        let b = sys.add_process("b", 1);
        let c = sys.add_process("c", 1);
        sys.add_channel("ab", a, b, 3).expect("valid");
        sys.add_channel("bc", b, c, 2).expect("valid");
        let kernels: Vec<Box<dyn Kernel<u8>>> = vec![
            Box::new(FixedLatency::new(2, 1, 0)),
            Box::new(FixedLatency::new(1, 1, 0)),
            Box::new(FixedLatency::new(1, 0, 0)),
        ];
        let (outcome, _) = run(
            &sys,
            kernels,
            SimConfig {
                max_iterations: Some(5),
                record_transfers: true,
                ..SimConfig::default()
            },
        );
        let vcd = transfers_to_vcd(&sys, &outcome.transfers);
        (sys, vcd, outcome.transfers)
    }

    #[test]
    fn header_declares_every_channel() {
        let (sys, vcd, _) = pipeline_vcd();
        for c in sys.channel_ids() {
            assert!(
                vcd.contains(&format!(" {} $end", sys.channel(c).name())),
                "channel {} missing",
                sys.channel(c).name()
            );
        }
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn transfers_were_recorded_and_are_well_formed() {
        let (_, _, transfers) = pipeline_vcd();
        assert!(!transfers.is_empty());
        for t in &transfers {
            assert!(t.start < t.done, "interval must be non-empty");
        }
        // Sorted by start time.
        for w in transfers.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn timestamps_are_monotone_in_the_dump() {
        let (_, vcd, _) = pipeline_vcd();
        let mut last = -1i64;
        for line in vcd.lines() {
            if let Some(rest) = line.strip_prefix('#') {
                let t: i64 = rest.parse().expect("numeric timestamp");
                assert!(t >= last, "timestamps regressed: {t} after {last}");
                last = t;
            }
        }
        assert!(last > 0, "dump contains activity");
    }

    #[test]
    fn every_rise_eventually_falls() {
        let (sys, vcd, _) = pipeline_vcd();
        for c in sys.channel_ids() {
            let id = wire_id(c.index());
            let rises = vcd.matches(&format!("\n1{id}\n")).count();
            let falls = vcd.matches(&format!("\n0{id}\n")).count();
            // The initial dumpvars adds one extra `0`.
            assert!(falls >= rises, "wire {id}: {rises} rises vs {falls} falls");
        }
    }

    #[test]
    fn wire_ids_are_printable_and_unique() {
        let ids: Vec<String> = (0..200).map(wire_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|ch| ('!'..='~').contains(&ch)));
        }
    }
}
