//! Offline stand-in for the `rand` crate (0.10 API surface).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable `StdRng` plus
//! the `random` / `random_range` / `random_bool` extension methods. The
//! generator is SplitMix64 — statistically fine for synthetic-benchmark
//! generation, deterministic across platforms, and trivially auditable.
//! It does **not** match upstream `rand`'s stream bit-for-bit; seeds are
//! only reproducible against this implementation, which is all the
//! workspace relies on (socgen's own determinism tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible uniformly at random by [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics on empty ranges, matching upstream `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing sampling methods (rand 0.10 names).
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..7);
            assert!(x < 7);
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn range_sampling_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
