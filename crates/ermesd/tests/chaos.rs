//! Chaos tests: the daemon under deterministic fault injection.
//!
//! Each test installs a [`parx::faultpoint`] plan (panics, delays, short
//! writes at named points in the worker loop, cache population, and the
//! response-write path), drives real HTTP traffic against a live server,
//! and asserts the fault-tolerance contract: a panic is isolated to the
//! one request that hit it, cancellation is timely, no client ever
//! receives a corrupted-but-complete response, and the server always
//! drains cleanly afterwards.
//!
//! The faultpoint registry is process-global, so every test serializes
//! on [`GATE`] and deactivates its plan before releasing it.

use ermesd::{Server, ServerConfig, SystemSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serializes tests that install fault plans (the registry is global).
static GATE: Mutex<()> = Mutex::new(());

const MOTIVATING: &str = include_str!("../../cli/testdata/motivating.json");

fn start(config: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// A fully parsed response: status, headers (lower-cased names), body.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One-shot request on its own connection. `Err` on any transport-level
/// failure, including a response truncated before the blank line or
/// short of its `content-length` — the detectable shapes a short write
/// produces (a truncated response must never look complete).
fn try_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::other("EOF before status line"));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line `{status_line}`")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            // EOF mid-headers: a short write, reported as such.
            return Err(std::io::Error::other("EOF before end of headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| std::io::Error::other("bad content-length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Reply {
        status,
        headers,
        body: String::from_utf8(body).map_err(|_| std::io::Error::other("non-UTF-8 body"))?,
    })
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let reply = try_request(addr, method, path, body).expect("transport");
    (reply.status, reply.body)
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("clean drain");
}

fn metric_value(metrics: &str, line_prefix: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(line_prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{line_prefix}` missing in:\n{metrics}"))
}

/// Polls `/metrics` until `line_prefix` reports at least `want`.
fn wait_for_metric_at_least(addr: SocketAddr, line_prefix: &str, want: u64) -> u64 {
    for _ in 0..3000 {
        let (_, metrics) = request(addr, "GET", "/metrics", "");
        let value = metric_value(&metrics, line_prefix);
        if value >= want {
            return value;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("metric `{line_prefix}` never reached {want}");
}

/// A deliberately heavy request: a large synthetic SoC swept over a long
/// target ladder, taking seconds — plenty of iterations for a
/// cancellation to land in. Sized so the sweep comfortably outlasts the
/// deadlines below even with the warm-started ILP engine (which made
/// the previous 300-process spec finish in well under 300 ms).
fn heavy_spec() -> String {
    let soc = socgen::generate(socgen::SocGenConfig::sized(4_000, 6_000, 11));
    let design = ermes::Design::new(soc.system, soc.pareto).expect("well-formed");
    SystemSpec::from_design(&design).to_json_pretty()
}

const HEAVY_SWEEP: &str = "/sweep?targets=1,5,1000,5000,100000,500000,1000000,5000000,100000000,500000000,10000000000,50000000000";

/// Acceptance: an injected worker panic yields a 500 for exactly that
/// request; concurrent requests complete bit-identically to the CLI;
/// the worker is respawned (`ermes_worker_restarts_total` increments)
/// and `/healthz` stays green.
#[test]
fn injected_worker_panic_is_isolated_to_one_request() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    parx::faultpoint::activate("seed=1;worker.job=panic#1").expect("plan parses");
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let spec = SystemSpec::from_json(MOTIVATING).expect("testdata parses");
    let expected = ermesd::cmd_analyze(&spec).expect("analyzes");

    let outcomes: Vec<(u16, String)> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || request(addr, "POST", "/analyze", MOTIVATING)))
            .collect();
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect()
    });

    let failures: Vec<&(u16, String)> = outcomes.iter().filter(|(s, _)| *s != 200).collect();
    assert_eq!(failures.len(), 1, "exactly one request hit the panic");
    assert_eq!(failures[0].0, 500);
    assert!(
        failures[0].1.contains("panicked") && failures[0].1.contains("restarted"),
        "{}",
        failures[0].1
    );
    for (status, body) in outcomes.iter().filter(|(s, _)| *s == 200) {
        assert_eq!(*status, 200);
        assert_eq!(body, &expected, "survivors are bit-identical to the CLI");
    }

    // The respawn races the 500 (the replacement is spawned just after
    // the panic is caught); observe it through the scrape.
    wait_for_metric_at_least(addr, "ermes_worker_restarts_total", 1);
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "ermesd_jobs_panicked_total"), 1);
    assert_eq!(metric_value(&metrics, "ermesd_workers_alive"), 2);
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.lines().next(), Some("ok"), "{health}");
    assert!(health.contains("workers: 2/2 alive"), "{health}");
    assert!(health.contains("worker restarts: 1"), "{health}");

    parx::faultpoint::deactivate();
    shutdown(addr, handle);
}

/// A panic during a session edit is isolated to that session: the
/// poisoned state is dropped (the client sees a 500 and then 404s),
/// while other sessions keep serving bit-identical edits and the
/// worker is respawned.
#[test]
fn injected_panic_during_edit_drops_only_that_session() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    parx::faultpoint::deactivate();
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let json = SystemSpec::from_design(&mpeg2sys::mpeg2_design().0).to_json_pretty();
    let spec = SystemSpec::from_json(&json).expect("round-trips");
    let pname = &spec
        .processes
        .iter()
        .find(|p| p.pareto.is_some())
        .expect("mpeg2 has a frontier")
        .name;
    let edit = format!(r#"{{"reselect": {{"process": "{pname}", "point": 0}}}}"#);

    let open = |_| {
        let reply = try_request(addr, "POST", "/session", &json).expect("transport");
        assert_eq!(reply.status, 200, "{}", reply.body);
        reply.header("x-ermes-session").expect("id").to_string()
    };
    let a = open(());
    let b = open(());

    // The next pool job is the doomed edit (session routes skip the pool
    // for close, and nothing else is in flight).
    parx::faultpoint::activate("seed=7;worker.job=panic#1").expect("plan parses");
    let reply = try_request(addr, "POST", &format!("/session/{a}/edit"), &edit).expect("transport");
    assert_eq!(reply.status, 500, "{}", reply.body);
    assert!(
        reply.body.contains("panicked") && reply.body.contains("dropped"),
        "{}",
        reply.body
    );
    parx::faultpoint::deactivate();

    // The corrupted session is gone; its sibling is untouched and still
    // bit-identical to a from-scratch analysis of the edited design.
    let (status, _) = request(addr, "POST", &format!("/session/{a}/edit"), &edit);
    assert_eq!(status, 404, "poisoned session must be dropped");
    let reply = try_request(addr, "POST", &format!("/session/{b}/edit"), &edit).expect("transport");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let mut mirror = spec.clone();
    let pi = mirror
        .processes
        .iter()
        .position(|p| &p.name == pname)
        .unwrap();
    mirror.processes[pi].latency = mirror.processes[pi].pareto.as_ref().unwrap()[0].latency;
    let expected = ermesd::cmd_analyze(&mirror).expect("analyzes");
    assert_eq!(reply.body, expected, "sibling session diverged");

    wait_for_metric_at_least(addr, "ermes_worker_restarts_total", 1);
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "ermesd_workers_alive"), 2);
    assert_eq!(metric_value(&metrics, "ermes_session_dropped_total"), 1);
    assert_eq!(metric_value(&metrics, "ermes_sessions_live"), 1);
    shutdown(addr, handle);
}

/// Satellite: a deadline that expires mid-execution (after the worker
/// picked the job up) returns a timely 429 with partial-progress
/// metadata instead of blocking until the sweep completes.
#[test]
fn mid_run_deadline_returns_timely_429_with_progress() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    parx::faultpoint::deactivate();
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        // The heavy spec's JSON exceeds the default 4 MiB body cap.
        max_body_bytes: 32 * 1024 * 1024,
        ..ServerConfig::default()
    });
    let heavy = heavy_spec();
    // The deadline must sit between the request's pre-run overhead
    // (reading and parsing an ~9 MB spec, which counts against the
    // deadline before the first sweep step) and the full sweep time.
    // Both scale with machine speed, but debug builds inflate the parse
    // far more than the sweep, so the window is profile-dependent.
    let deadline_ms = if cfg!(debug_assertions) { 2_000 } else { 400 };
    let started = Instant::now();
    let reply = try_request(
        addr,
        "POST",
        &format!("{HEAVY_SWEEP}&deadline_ms={deadline_ms}"),
        &heavy,
    )
    .expect("transport");
    let elapsed = started.elapsed();
    assert_eq!(reply.status, 429, "{}", reply.body);
    // "cancelled (…) after N of M steps" distinguishes the mid-run path
    // from the queued-too-long shed ("before a worker was free").
    assert!(
        reply.body.contains("cancelled (deadline expired) after"),
        "{}",
        reply.body
    );
    assert!(reply.body.contains("of 12 steps"), "{}", reply.body);
    assert!(reply.header("retry-after").is_some());
    let progress = reply.header("x-ermes-progress").expect("progress header");
    assert!(progress.ends_with("/12"), "{progress}");
    // Timely: the full sweep takes far longer than the deadline plus a
    // generous bound on one Howard iteration of this system.
    assert!(elapsed < Duration::from_secs(10), "{elapsed:?}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "ermesd_cancelled_deadline_total"), 1);
    shutdown(addr, handle);
}

/// Tentpole: a client that hangs up mid-run cancels its own in-flight
/// job (observed via the EOF poll), freeing the worker long before the
/// sweep would have finished.
#[test]
fn client_disconnect_cancels_in_flight_work() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    parx::faultpoint::deactivate();
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        // The heavy spec's JSON exceeds the default 4 MiB body cap.
        max_body_bytes: 32 * 1024 * 1024,
        ..ServerConfig::default()
    });
    let heavy = heavy_spec();
    {
        let mut stream = TcpStream::connect(addr).expect("reachable");
        write!(
            stream,
            "POST {HEAVY_SWEEP} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{heavy}",
            heavy.len()
        )
        .expect("request written");
        stream.flush().expect("flushed");
        // Hang up without reading the response.
    }
    wait_for_metric_at_least(addr, "ermesd_cancelled_disconnect_total", 1);
    // The worker is free again: a normal request completes promptly.
    let spec = SystemSpec::from_json(MOTIVATING).expect("parses");
    let expected = ermesd::cmd_analyze(&spec).expect("analyzes");
    let (status, body) = request(addr, "POST", "/analyze", MOTIVATING);
    assert_eq!(status, 200);
    assert_eq!(body, expected);
    shutdown(addr, handle);
}

/// Tentpole: short writes on the response path are always detectable —
/// a client never receives a truncated response that parses as complete,
/// and a retry after the fault drains gets the exact CLI bytes.
#[test]
fn short_writes_never_corrupt_a_response() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    parx::faultpoint::activate("seed=3;http.write=short#3").expect("plan parses");
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let spec = SystemSpec::from_json(MOTIVATING).expect("parses");
    let expected = ermesd::cmd_analyze(&spec).expect("analyzes");

    let mut truncated = 0;
    let mut reply = None;
    for _ in 0..10 {
        match try_request(addr, "POST", "/analyze", MOTIVATING) {
            Ok(ok) => {
                reply = Some(ok);
                break;
            }
            Err(_) => truncated += 1, // detected short write; retry
        }
    }
    let reply = reply.expect("a retry eventually succeeds");
    assert_eq!(truncated, 3, "the plan truncates exactly the first 3");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body, expected, "retried response is bit-identical");

    parx::faultpoint::deactivate();
    shutdown(addr, handle);
}

/// The integrated chaos run: probabilistic panics, cache-population
/// delays, parse delays, and short writes under a fixed seed, against a
/// client that retries with backoff on 429/500/transport errors. Every
/// request eventually succeeds bit-identically, the restart accounting
/// balances, and the server drains cleanly.
#[test]
fn mixed_chaos_with_retrying_client_stays_consistent_and_drains() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    parx::faultpoint::activate(
        "seed=4;worker.job=panic@0.15;cache.insert=delay(25)@0.5;\
         json.parse=delay(10)@0.3;http.write=short@0.1",
    )
    .expect("plan parses");
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let spec = SystemSpec::from_json(MOTIVATING).expect("parses");
    let expect_analyze = ermesd::cmd_analyze(&spec).expect("analyzes");
    let (report, json) = ermesd::cmd_explore(&spec, 900, 1).expect("explores");
    let report: String = report
        .lines()
        .filter(|l| !l.starts_with("cache:"))
        .collect::<Vec<_>>()
        .join("\n");
    let expect_explore = format!("{report}\n{json}\n");

    let mut panics_seen = 0u64;
    for i in 0..24 {
        let (path, expected) = if i % 2 == 0 {
            ("/analyze", &expect_analyze)
        } else {
            ("/explore?target=900", &expect_explore)
        };
        let mut done = false;
        for attempt in 0..20 {
            match try_request(addr, "POST", path, MOTIVATING) {
                Ok(reply) if reply.status == 200 => {
                    assert_eq!(&reply.body, expected, "request {i} corrupted");
                    done = true;
                    break;
                }
                Ok(reply) if reply.status == 500 => panics_seen += 1,
                Ok(reply) => assert_eq!(reply.status, 429, "unexpected {}", reply.status),
                Err(_) => {} // short write; retry
            }
            std::thread::sleep(Duration::from_millis(5 * (attempt + 1)));
        }
        assert!(done, "request {i} never succeeded under chaos");
    }

    parx::faultpoint::deactivate();
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    let restarts = metric_value(&metrics, "ermes_worker_restarts_total");
    let panicked = metric_value(&metrics, "ermesd_jobs_panicked_total");
    assert_eq!(
        restarts, panicked,
        "every caught panic respawned exactly one worker:\n{metrics}"
    );
    assert!(
        panicked >= panics_seen,
        "the scrape saw at least the panics the client saw"
    );
    assert_eq!(metric_value(&metrics, "ermesd_workers_alive"), 2);
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.lines().next(), Some("ok"), "{health}");
    shutdown(addr, handle);
}
