//! Property tests hardening the spec front end: no input — truncated,
//! byte-mutated, or structurally invalid — may panic the parser or the
//! model builders. Malformed inputs must come back as structured errors
//! (this is what lets the daemon map them to clean HTTP 400s).

use ermesd::{ChannelSpec, ParetoPointSpec, ProcessSpec, SystemSpec};
use proptest::collection::vec;
use proptest::prelude::*;

/// A representative valid spec exercising every schema feature: Pareto
/// frontiers, explicit orders, and initial tokens.
fn base_json() -> String {
    r#"{
        "processes": [
            {"name": "src", "latency": 1},
            {"name": "p", "latency": 5,
             "pareto": [{"latency": 3, "area": 2.5}, {"latency": 5, "area": 1.0}],
             "get_order": ["in"], "put_order": ["mid", "out2"]},
            {"name": "snk", "latency": 2}
        ],
        "channels": [
            {"name": "in", "from": "src", "to": "p", "latency": 2},
            {"name": "mid", "from": "p", "to": "snk", "latency": 1, "initial_tokens": 1},
            {"name": "out2", "from": "p", "to": "snk", "latency": 3}
        ]
    }"#
    .to_string()
}

/// Builds a random — but structurally well-formed — spec from integers.
fn arb_spec() -> impl Strategy<Value = SystemSpec> {
    (
        2usize..6,
        vec((0usize..6, 0usize..6, 0u64..10, 0u64..3), 1..8),
    )
        .prop_map(|(nprocs, edges)| {
            let processes = (0..nprocs)
                .map(|i| ProcessSpec {
                    name: format!("p{i}"),
                    latency: (i as u64 % 7) + 1,
                    pareto: (i % 2 == 0).then(|| {
                        vec![
                            ParetoPointSpec {
                                latency: (i as u64 % 7) + 1,
                                area: 1.5 * (i as f64 + 1.0),
                            },
                            ParetoPointSpec {
                                latency: (i as u64 % 7) + 4,
                                area: 0.5,
                            },
                        ]
                    }),
                    get_order: None,
                    put_order: None,
                })
                .collect();
            let channels = edges
                .into_iter()
                .enumerate()
                .map(|(k, (from, to, latency, tokens))| ChannelSpec {
                    name: format!("c{k}"),
                    from: format!("p{}", from % nprocs),
                    to: format!("p{}", to % nprocs),
                    latency,
                    initial_tokens: tokens,
                })
                .collect();
            SystemSpec {
                processes,
                channels,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any prefix of a valid document parses or errors — never panics.
    #[test]
    fn truncated_specs_never_panic(cut in 0usize..2000) {
        let text = base_json();
        let cut = cut.min(text.len());
        // The sample is pure ASCII, so any byte index is a char boundary.
        let _ = SystemSpec::from_json(&text[..cut]);
    }

    /// Arbitrary byte substitutions anywhere in the document either
    /// parse into a spec whose model builders return structured errors,
    /// or fail to parse — never panic.
    #[test]
    fn byte_mutations_never_panic(edits in vec((0usize..4096, 0u8..128), 1..10)) {
        let mut bytes = base_json().into_bytes();
        let len = bytes.len();
        for (pos, byte) in edits {
            bytes[pos % len] = byte;
        }
        if let Ok(text) = String::from_utf8(bytes) {
            if let Ok(spec) = SystemSpec::from_json(&text) {
                if let Err(e) = spec.to_design() {
                    prop_assert!(!e.to_string().is_empty());
                }
            }
        }
    }

    /// Structurally random specs (possibly with self-channels or
    /// duplicate endpoints) build a design or report a named error; a
    /// valid one survives a JSON round trip unchanged.
    #[test]
    fn random_specs_build_or_error_cleanly(spec in arb_spec()) {
        let reparsed = SystemSpec::from_json(&spec.to_json_pretty())
            .expect("serializer output always parses");
        prop_assert_eq!(&reparsed, &spec);
        match spec.to_design() {
            Ok(design) => {
                prop_assert_eq!(
                    design.system().process_count(),
                    spec.processes.len()
                );
            }
            Err(e) => {
                // The message must name the offending element.
                prop_assert!(e.to_string().contains('`'), "unnamed error: {e}");
            }
        }
    }

    /// Number parsing accepts only what the schema promises: huge
    /// exponents (which overflow `f64` to infinity) in `area` are
    /// rejected as a structured error, not a crash deep in the sweep.
    #[test]
    fn pathological_areas_are_structured_errors(exp in 400u32..999) {
        let text = format!(
            r#"{{"processes": [{{"name": "p", "latency": 1,
                 "pareto": [{{"latency": 1, "area": 1e{exp}}}]}},
                {{"name": "q", "latency": 1}}],
                "channels": [{{"name": "c", "from": "p", "to": "q", "latency": 1}}]}}"#
        );
        if let Ok(spec) = SystemSpec::from_json(&text) {
            prop_assert!(spec.to_design().is_err(), "infinite area must not build");
        }
    }
}
