//! Differential property tests for the incremental session engine: a
//! [`ermes::DeltaState`] driven through a random edit sequence must be
//! *bit-identical* — report equality, `f64::to_bits` on areas and
//! slacks, and the rendered service response byte for byte — to a
//! from-scratch analysis of the same post-edit design, on every prefix
//! of the sequence, across socgen-generated SoC families.

use ermesd::SystemSpec;
use proptest::collection::vec;
use proptest::prelude::*;
use sysgraph::ProcessId;

/// One raw edit, mapped onto the concrete design inside the test (so
/// every generated value is valid by construction).
#[derive(Debug, Clone)]
enum RawEdit {
    /// Select `point % frontier_len` on process `proc % nprocs`.
    Reselect { proc: usize, point: usize },
    /// Rotate the get order of `proc % nprocs` left by `spin`, and its
    /// put order left by `spin / 2`.
    Reorder { proc: usize, spin: usize },
}

fn arb_edits() -> impl Strategy<Value = Vec<RawEdit>> {
    vec(
        (0usize..2, 0usize..64, 0usize..8).prop_map(|(kind, proc, n)| {
            if kind == 0 {
                RawEdit::Reselect { proc, point: n }
            } else {
                RawEdit::Reorder { proc, spin: n + 1 }
            }
        }),
        1..10,
    )
}

fn rotated<T: Clone>(items: &[T], by: usize) -> Vec<T> {
    let mut out = items.to_vec();
    let len = out.len();
    if len > 0 {
        out.rotate_left(by % len);
    }
    out
}

/// Asserts the session state agrees with a from-scratch analysis of
/// `mirror` down to the bit level, including the rendered response the
/// daemon would serve.
fn assert_bit_identical(st: &ermes::DeltaState, mirror: &ermes::Design, step: usize) {
    let fresh = ermes::analyze_design(mirror);
    assert_eq!(st.report(), &fresh, "report diverged after edit {step}");
    assert_eq!(
        st.design().area().to_bits(),
        mirror.area().to_bits(),
        "area diverged after edit {step}"
    );
    assert_eq!(
        st.report().slack(1_000).map(f64::to_bits),
        fresh.slack(1_000).map(f64::to_bits),
        "slack diverged after edit {step}"
    );
    let served = ermesd::render_session_report(st);
    let scratch = ermesd::cmd_analyze(&SystemSpec::from_design(mirror))
        .expect("a well-formed design analyzes");
    assert_eq!(
        served, scratch,
        "rendered response diverged after edit {step}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: incremental == from-scratch, bit for bit,
    /// at every step of a random edit sequence.
    #[test]
    fn random_edit_sequences_stay_bit_identical_to_full_reanalysis(
        procs in 3usize..16,
        chans_extra in 0usize..12,
        seed in 0u64..200,
        edits in arb_edits(),
    ) {
        let soc = socgen::generate(socgen::SocGenConfig::sized(procs, procs + chans_extra, seed));
        let design = ermes::Design::new(soc.system, soc.pareto).expect("socgen is well-formed");
        let mut mirror = design.clone();
        let mut st = ermes::DeltaState::open(design);
        assert_bit_identical(&st, &mirror, 0);

        let nprocs = mirror.system().process_count();
        for (step, edit) in edits.iter().enumerate() {
            match *edit {
                RawEdit::Reselect { proc, point } => {
                    let p = ProcessId::from_index(proc % nprocs);
                    let idx = point % mirror.pareto(p).len();
                    st.reselect(p, idx, None).expect("valid index analyzes");
                    mirror.select(p, idx).expect("valid index applies");
                }
                RawEdit::Reorder { proc, spin } => {
                    let p = ProcessId::from_index(proc % nprocs);
                    let gets = rotated(mirror.system().get_order(p), spin);
                    let puts = rotated(mirror.system().put_order(p), spin / 2);
                    st.reorder(p, gets.clone(), puts.clone(), None)
                        .expect("a rotation is a permutation");
                    mirror.system_mut().set_get_order(p, gets).expect("permutation");
                    mirror.system_mut().set_put_order(p, puts).expect("permutation");
                }
            }
            assert_bit_identical(&st, &mirror, step + 1);
        }
    }
}
