//! Integration tests for the daemon's tracing surface: the `/trace`
//! endpoint, its agreement with the `ermes_phase_seconds` histograms on
//! `/metrics`, and the shape of trees left behind by faulted jobs.
//!
//! The span journal and phase histograms are process-global, so every
//! test serializes on [`GATE`] and makes *relative* assertions (its own
//! tree, metric deltas) rather than assuming a quiet journal.

use ermesd::json::{self, Value};
use ermesd::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Serializes tests: fault plans and the trace journal are global.
static GATE: Mutex<()> = Mutex::new(());

const MOTIVATING: &str = include_str!("../../cli/testdata/motivating.json");

fn start(config: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("clean drain");
}

/// The `attrs.<key>` string of a tree node, if present.
fn attr<'a>(node: &'a Value, key: &str) -> Option<&'a str> {
    node.get("attrs")?.get(key)?.as_str()
}

/// Fetches `/trace` and returns the trees whose root carries the given
/// `outcome` attribute, newest last (the endpoint's order).
fn trees_with_outcome(addr: SocketAddr, outcome: &str) -> Vec<Value> {
    let (status, body) = request(addr, "GET", "/trace?n=256", "");
    assert_eq!(status, 200, "{body}");
    let trees = json::parse(&body).expect("trace endpoint emits valid JSON");
    trees
        .as_array()
        .expect("top level is an array")
        .iter()
        .filter(|t| attr(t, "outcome") == Some(outcome))
        .cloned()
        .collect()
}

/// Recursively checks tree well-formedness: every node's interval is
/// ordered and contained in its parent's, and counts spans per name.
fn check_tree(node: &Value, bounds: Option<(u64, u64)>, counts: &mut Vec<(String, u64)>) {
    let name = node.get("name").and_then(Value::as_str).expect("name");
    let start = node.get("start_ns").and_then(Value::as_u64).expect("start");
    let end = node.get("end_ns").and_then(Value::as_u64).expect("end");
    assert!(start <= end, "span {name} ends before it starts");
    if let Some((lo, hi)) = bounds {
        assert!(
            start >= lo && end <= hi,
            "span {name} [{start}, {end}] escapes its parent [{lo}, {hi}]"
        );
    }
    match counts.iter_mut().find(|(n, _)| n == name) {
        Some((_, c)) => *c += 1,
        None => counts.push((name.to_string(), 1)),
    }
    for child in node
        .get("children")
        .and_then(Value::as_array)
        .expect("children")
    {
        check_tree(child, Some((start, end)), counts);
    }
}

fn phase_count(metrics: &str, phase: &str) -> u64 {
    let prefix = format!("ermes_phase_seconds_count{{phase=\"{phase}\"}} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// A successful sweep leaves one completed `request` tree whose spans
/// nest correctly, and every span in it is also accounted for by the
/// `ermes_phase_seconds` histograms on `/metrics` — the two views of
/// the same journal must agree.
#[test]
fn trace_tree_agrees_with_phase_metrics() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    parx::faultpoint::deactivate();
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    let (_, before) = request(addr, "GET", "/metrics", "");
    let (status, body) = request(addr, "POST", "/sweep?targets=40,60,90", MOTIVATING);
    assert_eq!(status, 200, "{body}");

    let trees = trees_with_outcome(addr, "ok");
    let tree = trees.last().expect("the sweep left a completed tree");
    assert_eq!(tree.get("name").and_then(Value::as_str), Some("request"));
    assert_eq!(attr(tree, "endpoint"), Some("sweep"));

    let mut counts = Vec::new();
    check_tree(tree, None, &mut counts);
    let count_of = |name: &str| {
        counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, c)| c)
    };
    assert_eq!(count_of("request"), 1);
    assert_eq!(count_of("sweep_target"), 3, "one span per target");
    assert!(count_of("explore") >= 3);
    assert!(count_of("cache") >= 1);

    // Every span recorded in the tree was also observed by the phase
    // histograms (which additionally see spans from other jobs, hence >=).
    let (_, after) = request(addr, "GET", "/metrics", "");
    for (name, count) in &counts {
        let delta = phase_count(&after, name) - phase_count(&before, name);
        assert!(
            delta >= *count,
            "phase `{name}`: metrics saw {delta} spans, tree holds {count}"
        );
    }

    shutdown(addr, handle);
}

/// Chaos acceptance: a worker panic mid-job still yields a well-formed
/// `/trace` tree — truncated where the work stopped, root tagged
/// `outcome=panic` — because span guards record on unwind.
#[test]
fn worker_panic_leaves_well_formed_tree_tagged_panic() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    parx::faultpoint::activate("seed=5;worker.job=panic#1").expect("plan parses");
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    let (status, body) = request(addr, "POST", "/analyze", MOTIVATING);
    assert_eq!(status, 500, "the faulted request reports the panic");
    assert!(body.contains("panicked"), "{body}");

    let trees = trees_with_outcome(addr, "panic");
    let tree = trees.last().expect("the panicked job left a tree");
    assert_eq!(tree.get("name").and_then(Value::as_str), Some("request"));
    assert_eq!(attr(tree, "endpoint"), Some("analyze"));
    let mut counts = Vec::new();
    check_tree(tree, None, &mut counts);

    // The same request retried without the fault succeeds and leaves a
    // complete `ok` tree — the journal survives the panic untorn.
    parx::faultpoint::deactivate();
    let ok_before = trees_with_outcome(addr, "ok").len();
    let (status, _) = request(addr, "POST", "/analyze", MOTIVATING);
    assert_eq!(status, 200);
    let ok_trees = trees_with_outcome(addr, "ok");
    assert!(ok_trees.len() > ok_before);
    let mut counts = Vec::new();
    check_tree(ok_trees.last().expect("ok tree"), None, &mut counts);
    assert!(
        counts.iter().any(|(n, _)| n == "analysis"),
        "healthy analyze reaches the analysis phase: {counts:?}"
    );

    shutdown(addr, handle);
}
