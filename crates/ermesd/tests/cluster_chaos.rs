//! Chaos tests of the coordinator/worker cluster: a worker killed
//! mid-sweep, a fleet that is entirely unreachable, drain under load,
//! and seeded network faults on the coordinator's client path. The
//! invariant under every failure is the same: a `200` response is
//! bit-identical to what a single-node daemon would have produced.

use ermesd::json::{self, Value};
use ermesd::{ClusterConfig, Server, ServerConfig, SystemSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

/// Serializes the tests in this binary: they are CPU-heavy (real sweeps
/// on real sockets) and one of them flips the process-global faultpoint
/// plan.
static GATE: Mutex<()> = Mutex::new(());

fn start(config: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Cluster settings tuned for tests: fast probes, fast retries, long
/// subjob timeout (debug-build sweeps are slow).
fn test_cluster(worker_addrs: Vec<String>) -> ClusterConfig {
    let mut config = ClusterConfig::new(worker_addrs);
    config.probe_interval_ms = 50;
    config.suspect_after = 1;
    config.down_after = 2;
    config.up_after = 2;
    config.subjob_timeout_ms = 120_000;
    config.backoff_base_ms = 1;
    config.backoff_cap_ms = 20;
    config
}

/// One-shot request on its own connection; returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("server reachable");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request written");
    stream.flush().expect("flushed");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("complete body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(addr, "POST", path, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, "")
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("clean drain");
}

fn metric_value(metrics: &str, line_prefix: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(line_prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{line_prefix}` missing in:\n{metrics}"))
}

fn soc_spec(processes: usize, seed: u64) -> String {
    let soc = socgen::generate(socgen::SocGenConfig::sized(
        processes,
        processes * 3 / 2,
        seed,
    ));
    let design = ermes::Design::new(soc.system, soc.pareto).expect("well-formed");
    SystemSpec::from_design(&design).to_json_pretty()
}

/// What a single-node daemon answers for this sweep — the reference
/// bytes every clustered response must reproduce exactly.
fn single_node_sweep(path: &str, spec: &str) -> String {
    let (addr, handle) = start(ServerConfig::default());
    let (status, body) = post(addr, path, spec);
    assert_eq!(status, 200, "{body}");
    shutdown(addr, handle);
    body
}

/// A real worker daemon in a child process (so it can be SIGKILLed),
/// bound to an ephemeral port parsed from its startup banner. The
/// returned reader keeps the stdout pipe open — dropping it would make
/// the daemon's shutdown banner a fatal broken pipe.
fn spawn_worker_process() -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ermesd"))
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn worker daemon");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("startup banner");
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("banner has address")
        .to_string();
    (child, addr, reader)
}

/// An in-process worker daemon, for tests that do not need to kill one.
fn spawn_worker_inprocess() -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
}

const SWEEP: &str = "/sweep?targets=1,10,100,1000,10000,100000,1000000,10000000";

/// Recursively check one span-tree node from `GET /trace` JSON: spans
/// end after they start and stay inside their parent's interval — the
/// graft's clock-alignment guarantee — except across the boundary of a
/// `role: loser` subtree (a hedge duplicate or late retry straggler may
/// graft after its parent dispatch span closed). Collects grafted
/// `host` attributes and counts `dispatch` spans, each of which must
/// carry an `outcome` attribute on every exit path.
fn check_tree_node(
    node: &Value,
    parent: Option<(u64, u64)>,
    hosts: &mut Vec<String>,
    dispatch_spans: &mut usize,
) {
    let bound = |key: &str| {
        node.get(key)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("span misses `{key}`"))
    };
    let (start, end) = (bound("start_ns"), bound("end_ns"));
    assert!(start <= end, "span ends before it starts");
    let attr = |key: &str| {
        node.get("attrs")
            .and_then(|a| a.get(key))
            .and_then(Value::as_str)
    };
    if let Some((ps, pe)) = parent {
        if attr("role") != Some("loser") {
            assert!(
                ps <= start && end <= pe,
                "span [{start}, {end}] escapes its parent's interval [{ps}, {pe}]"
            );
        }
    }
    if let Some(host) = attr("host") {
        hosts.push(host.to_string());
    }
    if node.get("name").and_then(Value::as_str) == Some("dispatch") {
        assert!(
            attr("outcome").is_some(),
            "every dispatch span records an outcome"
        );
        *dispatch_spans += 1;
    }
    if let Some(children) = node.get("children").and_then(Value::as_array) {
        for child in children {
            check_tree_node(child, Some((start, end)), hosts, dispatch_spans);
        }
    }
}

/// Fetch and structurally validate every tree on a coordinator's
/// `GET /trace`; returns the grafted hosts and dispatch-span count.
fn check_coordinator_trace(coord: SocketAddr) -> (Vec<String>, usize) {
    let (status, body) = get(coord, "/trace?n=64");
    assert_eq!(status, 200);
    let root = json::parse(&body).expect("trace JSON parses");
    let trees = root.as_array().expect("trace is an array of trees");
    let mut hosts = Vec::new();
    let mut dispatch_spans = 0;
    for tree in trees {
        check_tree_node(tree, None, &mut hosts, &mut dispatch_spans);
    }
    (hosts, dispatch_spans)
}

/// Acceptance gate: SIGKILL one of two workers mid-sweep; the in-flight
/// sweep completes `200` with bytes identical to a single-node daemon
/// (subjobs on the dead worker are retried onto the survivor), and so
/// does a fresh sweep issued after the kill.
#[test]
fn mid_sweep_worker_kill_completes_bit_identically() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let spec = soc_spec(1_200, 3);
    let expected = single_node_sweep(SWEEP, &spec);

    let (mut victim, victim_addr, _victim_out) = spawn_worker_process();
    let (mut survivor, survivor_addr, _survivor_out) = spawn_worker_process();
    let (coord, coord_handle) = start(ServerConfig {
        cluster: Some(test_cluster(vec![victim_addr, survivor_addr.clone()])),
        ..ServerConfig::default()
    });
    // The span journal is process-global, and earlier tests in this
    // binary ran *in-process* worker fleets: their worker-side spans
    // land raw in this same journal and may outlive their dispatch
    // parents (a hedge or retry settles first). This test's fleet is
    // out-of-process — clear the journal so `/trace` holds exactly the
    // trees stitched here.
    trace::reset();

    let spec_for_client = spec.clone();
    let in_flight = std::thread::spawn(move || post(coord, SWEEP, &spec_for_client));
    std::thread::sleep(Duration::from_millis(300));
    victim.kill().expect("SIGKILL victim worker");
    let (status, body) = in_flight.join().expect("client thread");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected, "mid-kill sweep must stay bit-identical");

    // A sweep that *starts* with the worker already dead: dispatch sees
    // the failure (or the prober has marked it Down) and the survivor
    // serves everything.
    let (status, body) = post(coord, SWEEP, &spec);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected, "post-kill sweep must stay bit-identical");
    let (_, metrics) = get(coord, "/metrics");
    assert!(
        metric_value(&metrics, "ermes_cluster_subjobs_total") > 0,
        "sweeps were fanned out:\n{metrics}"
    );
    // Metrics federation: the surviving worker is Up, so its samples
    // appear under a `node` label; the dead one is skipped, not hung on.
    assert!(
        metrics.contains(&format!("node=\"{survivor_addr}\"")),
        "survivor's metrics federated under its node label:\n{metrics}"
    );

    // The stitched trace survives the kill truncated but well-formed:
    // every tree on `/trace` passes the structural checks (monotonic,
    // parent-contained after clock alignment), dispatch spans carry
    // outcome attributes, and the survivor's subjob subtrees were
    // grafted with its host attribute. The victim's subtrees may or may
    // not be present depending on how far it got before the kill.
    let (hosts, dispatch_spans) = check_coordinator_trace(coord);
    assert!(dispatch_spans > 0, "dispatch spans recorded");
    assert!(
        hosts.iter().any(|h| h == &survivor_addr),
        "survivor {survivor_addr} grafted into the coordinator trace (saw {hosts:?})"
    );

    // Tail sampling: a request whose subjobs were retried (onto the
    // survivor) or recomputed degraded is exactly what the flight
    // recorder keeps.
    let (status, slow) = get(coord, "/trace/slow");
    assert_eq!(status, 200);
    assert!(
        slow.contains("\"reason\":\"retried\"") || slow.contains("\"reason\":\"degraded\""),
        "the mid-kill sweep is retained by the flight recorder:\n{slow}"
    );

    shutdown(coord, coord_handle);
    let _ = victim.wait();
    let survivor_sock: SocketAddr = survivor_addr.parse().expect("worker address parses");
    let (status, _) = post(survivor_sock, "/shutdown", "");
    assert_eq!(status, 200);
    let _ = survivor.wait();
}

/// Every worker unreachable from the start: the coordinator runs jobs
/// in-process (degraded mode), answers bit-identically, counts the
/// fallbacks, and reports the fleet on `/healthz` in parseable lines.
#[test]
fn all_workers_down_serves_locally_and_counts_degraded() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Bind-then-drop yields ports that refuse connections.
    let dead: Vec<String> = (0..2)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        })
        .collect();
    let spec = soc_spec(200, 17);
    let expected_sweep = single_node_sweep("/sweep?targets=10,1000,100000", &spec);
    let expected_explore = single_node_sweep("/explore?target=1000", &spec);

    let mut cluster = test_cluster(dead);
    cluster.attempts = 2;
    let (coord, handle) = start(ServerConfig {
        cluster: Some(cluster),
        ..ServerConfig::default()
    });

    let (status, body) = post(coord, "/sweep?targets=10,1000,100000", &spec);
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body, expected_sweep,
        "degraded sweep must stay bit-identical"
    );
    let (status, body) = post(coord, "/explore?target=1000", &spec);
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body, expected_explore,
        "degraded explore must stay bit-identical"
    );

    let (_, metrics) = get(coord, "/metrics");
    assert!(
        metric_value(&metrics, "ermes_cluster_degraded_total") > 0,
        "local fallbacks are counted:\n{metrics}"
    );

    let (status, health) = get(coord, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.lines().next(), Some("ok"), "first line stays `ok`");
    for needle in [
        "sessions live: ",
        "queue depth: ",
        "trace: journal ",
        "cluster workers: ",
        "cluster degraded jobs: ",
    ] {
        assert!(
            health.lines().any(|l| l.starts_with(needle)),
            "healthz misses `{needle}`:\n{health}"
        );
    }
    assert_eq!(
        health
            .lines()
            .filter(|l| l.starts_with("cluster worker "))
            .count(),
        2,
        "one line per fleet worker:\n{health}"
    );

    // Degraded requests are tail-sampled: the flight recorder keeps
    // their full trees under the `degraded` reason.
    let (status, slow) = get(coord, "/trace/slow");
    assert_eq!(status, 200);
    assert!(
        slow.contains("\"reason\":\"degraded\""),
        "degraded requests retained by the flight recorder:\n{slow}"
    );

    shutdown(coord, handle);
}

/// `POST /shutdown` while clustered sweeps are in flight: every request
/// the coordinator accepted completes with the exact single-node bytes;
/// none is cut off mid-response.
#[test]
fn drain_under_load_completes_every_accepted_sweep() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let spec = soc_spec(600, 23);
    const PATH: &str = "/sweep?targets=1,100,10000,1000000";
    let expected = single_node_sweep(PATH, &spec);

    let (worker_a, worker_a_handle) = spawn_worker_inprocess();
    let (worker_b, worker_b_handle) = spawn_worker_inprocess();
    let (coord, coord_handle) = start(ServerConfig {
        cluster: Some(test_cluster(vec![
            worker_a.to_string(),
            worker_b.to_string(),
        ])),
        ..ServerConfig::default()
    });

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || post(coord, PATH, &spec))
        })
        .collect();
    // Let the requests get accepted, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(200));
    let (status, _) = post(coord, "/shutdown", "");
    assert_eq!(status, 200);

    let mut completed = 0;
    for client in clients {
        let (status, body) = client.join().expect("client thread");
        assert_eq!(status, 200, "an accepted sweep was lost in drain: {body}");
        assert_eq!(body, expected, "drained sweep must stay bit-identical");
        completed += 1;
    }
    assert_eq!(completed, 4, "zero accepted requests lost");
    coord_handle
        .join()
        .expect("coordinator thread")
        .expect("clean drain");
    shutdown(worker_a, worker_a_handle);
    shutdown(worker_b, worker_b_handle);
}

/// Seeded faults on the coordinator's worker-client path (connection
/// resets at 40% probability): dispatch retries onto replicas — or, if
/// a subjob exhausts its attempts, recomputes locally — and the bytes
/// never change. The retry counter proves the faults actually fired.
#[test]
fn injected_network_faults_retry_transparently_bit_identically() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let spec = soc_spec(200, 29);
    const PATH: &str = "/sweep?targets=5,50,500,5000,50000";
    let expected = single_node_sweep(PATH, &spec);

    let (worker_a, worker_a_handle) = spawn_worker_inprocess();
    let (worker_b, worker_b_handle) = spawn_worker_inprocess();
    parx::faultpoint::activate("seed=7;cluster.request=conn.reset@0.4").expect("plan parses");
    let (coord, coord_handle) = start(ServerConfig {
        cluster: Some(test_cluster(vec![
            worker_a.to_string(),
            worker_b.to_string(),
        ])),
        ..ServerConfig::default()
    });

    for round in 0..3 {
        let (status, body) = post(coord, PATH, &spec);
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(
            body, expected,
            "round {round}: chaos sweep must stay bit-identical"
        );
    }
    let (_, metrics) = get(coord, "/metrics");
    assert!(
        metric_value(&metrics, "ermes_cluster_retries_total") > 0,
        "the injected resets forced retries:\n{metrics}"
    );

    parx::faultpoint::deactivate();
    shutdown(coord, coord_handle);
    shutdown(worker_a, worker_a_handle);
    shutdown(worker_b, worker_b_handle);
}
