//! End-to-end tests of the daemon: concurrent clients against a live
//! server on an ephemeral port, checked bit for bit against the serial
//! command output; admission control (queue-full and deadline 429s);
//! metrics consistency; worker-count determinism; graceful drain.

use ermesd::{Server, ServerConfig, SystemSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

const MOTIVATING: &str = include_str!("../../cli/testdata/motivating.json");

fn start(config: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// A fully parsed response: status, headers (lower-cased names), body.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One-shot request on its own connection, headers included.
fn request_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("server reachable");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request written");
    stream.flush().expect("flushed");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().expect("numeric content-length");
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    Reply {
        status,
        headers,
        body: String::from_utf8(body).expect("utf-8 body"),
    }
}

/// One-shot request on its own connection; returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let reply = request_full(addr, method, path, body);
    (reply.status, reply.body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(addr, "POST", path, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, "")
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("clean drain");
}

fn mpeg2_spec_json() -> String {
    SystemSpec::from_design(&mpeg2sys::mpeg2_design().0).to_json_pretty()
}

/// Strips the run-history cache-stats line from CLI output.
fn strip_cache_line(text: &str) -> String {
    let mut out: String = text
        .lines()
        .filter(|l| !l.starts_with("cache:"))
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    out
}

fn metric_value(metrics: &str, line_prefix: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(line_prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{line_prefix}` missing in:\n{metrics}"))
}

/// Polls `/metrics` until `line_prefix` reports `want` (the gauges are
/// sampled at scrape time, so this observes real server state).
fn wait_for_gauge(addr: SocketAddr, line_prefix: &str, want: u64) {
    for _ in 0..3000 {
        let (_, metrics) = get(addr, "/metrics");
        if metric_value(&metrics, line_prefix) == want {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("gauge `{line_prefix}` never reached {want}");
}

#[test]
fn concurrent_clients_get_cli_identical_responses_and_metrics_add_up() {
    const CLIENTS: usize = 32;
    const TARGET: u64 = 1_000_000_000;
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        queue_capacity: 256,
        ..ServerConfig::default()
    });

    let motivating = SystemSpec::from_json(MOTIVATING).expect("testdata parses");
    let mpeg2_json = mpeg2_spec_json();
    let mpeg2 = SystemSpec::from_json(&mpeg2_json).expect("round-trips");

    // The serial ground truth, computed once via the shared command layer
    // (identical to `ermes analyze` / `ermes explore` stdout).
    let expect_analyze_motivating = ermesd::cmd_analyze(&motivating).expect("analyzes");
    let expect_analyze_mpeg2 = ermesd::cmd_analyze(&mpeg2).expect("analyzes");
    let explore_expected = |spec: &SystemSpec| {
        let (report, json) = ermesd::cmd_explore(spec, TARGET, 1).expect("explores");
        format!("{}{json}\n", strip_cache_line(&report))
    };
    let expect_explore_motivating = explore_expected(&motivating);
    let expect_explore_mpeg2 = explore_expected(&mpeg2);

    let outcomes: Vec<(usize, u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let motivating_json = MOTIVATING.to_string();
                let mpeg2_json = mpeg2_json.clone();
                scope.spawn(move || {
                    let (path, body): (String, &str) = match i % 4 {
                        0 => ("/analyze".into(), &motivating_json),
                        1 => ("/analyze".into(), &mpeg2_json),
                        2 => (format!("/explore?target={TARGET}"), &motivating_json),
                        _ => (format!("/explore?target={TARGET}"), &mpeg2_json),
                    };
                    let (status, response) = post(addr, &path, body);
                    (i, status, response)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (i, status, response) in outcomes {
        assert_eq!(status, 200, "client {i}: {response}");
        let expected = match i % 4 {
            0 => &expect_analyze_motivating,
            1 => &expect_analyze_mpeg2,
            2 => &expect_explore_motivating,
            _ => &expect_explore_mpeg2,
        };
        assert_eq!(&response, expected, "client {i} diverged from the CLI");
    }

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let analyze_ok = metric_value(
        &metrics,
        "ermesd_requests_total{endpoint=\"analyze\",status=\"200\"}",
    );
    let explore_ok = metric_value(
        &metrics,
        "ermesd_requests_total{endpoint=\"explore\",status=\"200\"}",
    );
    assert_eq!(analyze_ok, (CLIENTS / 2) as u64);
    assert_eq!(explore_ok, (CLIENTS / 2) as u64);
    assert_eq!(
        metric_value(&metrics, "ermesd_request_seconds_count"),
        CLIENTS as u64,
        "every analysis request observed exactly once"
    );
    // Two distinct base designs were served, each behind one shared cache.
    assert_eq!(metric_value(&metrics, "ermesd_design_caches"), 2);
    let hits = metric_value(&metrics, "ermesd_cache_analysis_hits");
    let misses = metric_value(&metrics, "ermesd_cache_analysis_misses");
    assert!(
        hits > 0,
        "32 clients on 2 designs must share work:\n{metrics}"
    );
    assert!(misses > 0);
    // The explore requests above drove the selection ILP, so the sampled
    // solver counters must be present and non-zero.
    assert!(
        metric_value(&metrics, "ermes_ilp_nodes_total") > 0,
        "exploration must have explored branch & bound nodes:\n{metrics}"
    );
    let _ = metric_value(&metrics, "ermes_ilp_warmstart_hits_total");
    shutdown(addr, handle);
}

#[test]
fn responses_are_identical_at_any_worker_count() {
    const TARGET: u64 = 900; // forces real exploration on the motivating system
    let sweep_path = "/sweep?targets=900,1200,5000&jobs=2";
    let mut per_worker_count = Vec::new();
    for workers in [1, 2, 4] {
        let (addr, handle) = start(ServerConfig {
            workers,
            ..ServerConfig::default()
        });
        let explore = post(
            addr,
            &format!("/explore?target={TARGET}&jobs=2"),
            MOTIVATING,
        );
        let sweep = post(addr, sweep_path, MOTIVATING);
        assert_eq!(explore.0, 200, "{}", explore.1);
        assert_eq!(sweep.0, 200, "{}", sweep.1);
        per_worker_count.push((explore.1, sweep.1));
        shutdown(addr, handle);
    }
    let spec = SystemSpec::from_json(MOTIVATING).expect("parses");
    let (report, json) = ermesd::cmd_explore(&spec, TARGET, 1).expect("explores");
    let expect_explore = format!("{}{json}\n", strip_cache_line(&report));
    let expect_sweep =
        strip_cache_line(&ermesd::cmd_sweep(&spec, &[900, 1200, 5000], 1).expect("sweeps"));
    for (explore, sweep) in per_worker_count {
        assert_eq!(explore, expect_explore);
        assert_eq!(sweep, expect_sweep);
    }
}

#[test]
fn full_queue_and_expired_deadlines_shed_with_429() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        // The heavy spec's JSON exceeds the default 4 MiB body cap.
        max_body_bytes: 32 * 1024 * 1024,
        ..ServerConfig::default()
    });
    // A deliberately heavy request to occupy the single worker — sized
    // so the sweep outlasts the 50 ms deadline below by a wide margin
    // even with the warm-started ILP engine.
    let soc = socgen::generate(socgen::SocGenConfig::sized(2_000, 3_000, 11));
    let design = ermes::Design::new(soc.system, soc.pareto).expect("well-formed");
    let heavy = SystemSpec::from_design(&design).to_json_pretty();
    let heavy_path = "/sweep?targets=1,1000,100000,1000000,100000000,10000000000";

    let (slow, queued, bounced) = std::thread::scope(|scope| {
        let slow = scope.spawn(|| post(addr, heavy_path, &heavy));
        // Wait until the heavy request has actually reached the worker
        // (parsing a 2000-process spec takes a while; sleeping a fixed
        // interval would race it).
        wait_for_gauge(addr, "ermesd_jobs_running ", 1);
        // Fills the queue's single slot; its 50 ms deadline will be long
        // gone by the time the worker frees up.
        let queued = scope.spawn(|| post(addr, "/analyze?deadline_ms=50", MOTIVATING));
        wait_for_gauge(addr, "ermesd_queue_depth ", 1);
        // Queue full: rejected on the spot.
        let bounced = scope.spawn(|| request_full(addr, "POST", "/analyze", MOTIVATING));
        (
            slow.join().expect("client"),
            queued.join().expect("client"),
            bounced.join().expect("client"),
        )
    });
    assert_eq!(slow.0, 200, "{}", slow.1);
    assert_eq!(
        bounced.status, 429,
        "queue-full must shed: {}",
        bounced.body
    );
    assert!(bounced.body.contains("queue full"), "{}", bounced.body);
    // The hint scales with the backlog: at bounce time one job is
    // running and one is queued behind a single worker, so the advice
    // is two job-drains, not the old hardcoded `1`.
    assert_eq!(
        bounced.header("retry-after"),
        Some("2"),
        "retry-after must reflect backlog / workers"
    );
    assert_eq!(queued.0, 429, "expired deadline must shed: {}", queued.1);
    assert!(queued.1.contains("deadline"), "{}", queued.1);

    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(metric_value(&metrics, "ermesd_shed_queue_full_total"), 1);
    assert_eq!(metric_value(&metrics, "ermesd_shed_deadline_total"), 1);
    shutdown(addr, handle);
}

#[test]
fn malformed_inputs_map_to_clean_http_errors() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    // Truncated JSON.
    let (status, body) = post(addr, "/analyze", &MOTIVATING[..40]);
    assert_eq!(status, 400, "{body}");
    // Schema violation names the field.
    let (status, body) = post(
        addr,
        "/analyze",
        r#"{"processes": [{"name": "p", "latency": -1}], "channels": []}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("latency"), "{body}");
    // Model violation names the element.
    let (status, body) = post(
        addr,
        "/analyze",
        r#"{"processes": [{"name": "p", "latency": 1}],
            "channels": [{"name": "c", "from": "p", "to": "ghost", "latency": 1}]}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("ghost"), "{body}");
    // Empty Pareto frontier.
    let (status, body) = post(
        addr,
        "/analyze",
        r#"{"processes": [{"name": "p", "latency": 1, "pareto": []},
                          {"name": "q", "latency": 1}],
            "channels": [{"name": "c", "from": "p", "to": "q", "latency": 1}]}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("pareto"), "{body}");
    // Missing required query parameter.
    let (status, body) = post(addr, "/explore", MOTIVATING);
    assert_eq!(status, 400);
    assert!(body.contains("target"), "{body}");
    // Unknown route and wrong method.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/analyze").0, 405);
    // RFC 9110: a 405 on a known path names the allowed method.
    for path in [
        "/analyze", "/order", "/explore", "/sweep", "/verify", "/session",
    ] {
        let reply = request_full(addr, "GET", path, "");
        assert_eq!(reply.status, 405, "GET {path}");
        assert_eq!(reply.header("allow"), Some("POST"), "GET {path}");
    }
    for path in ["/healthz", "/metrics", "/trace"] {
        let reply = request_full(addr, "POST", path, "");
        assert_eq!(reply.status, 405, "POST {path}");
        assert_eq!(reply.header("allow"), Some("GET"), "POST {path}");
    }
    for sub in ["/session/0/edit", "/session/0/verify"] {
        let reply = request_full(addr, "PUT", sub, "");
        assert_eq!(reply.status, 405, "PUT {sub}");
        assert_eq!(reply.header("allow"), Some("POST"), "PUT {sub}");
    }
    let reply = request_full(addr, "GET", "/session/0", "");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("DELETE"));
    // Sub-resources that don't exist stay 404 regardless of method.
    assert_eq!(post(addr, "/session/0/nope", "").0, 404);
    // A deadlocking system is a semantic failure, not a bad request.
    let (status, body) = post(
        addr,
        "/explore?target=10",
        r#"{"processes": [{"name": "a", "latency": 1}, {"name": "b", "latency": 1}],
            "channels": [{"name": "f", "from": "a", "to": "b", "latency": 1},
                         {"name": "r", "from": "b", "to": "a", "latency": 1}]}"#,
    );
    assert_eq!(status, 422, "{body}");
    shutdown(addr, handle);
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServerConfig::default()
    });
    let results = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|_| scope.spawn(move || post(addr, "/explore?target=900", MOTIVATING)))
            .collect();
        // Let the requests reach the queue, then pull the plug.
        std::thread::sleep(Duration::from_millis(100));
        let (status, body) = post(addr, "/shutdown", "");
        assert_eq!(status, 200, "{body}");
        clients
            .into_iter()
            .map(|c| c.join().expect("client"))
            .collect::<Vec<_>>()
    });
    handle
        .join()
        .expect("server thread")
        .expect("drain returns cleanly");
    for (status, body) in results {
        assert_eq!(
            status, 200,
            "admitted work must finish during drain: {body}"
        );
        assert!(body.contains("best: iteration"), "{body}");
    }
}

/// Tentpole: every `/session/{id}/edit` response must be byte-identical
/// to `POST /analyze` on a spec capturing the session's post-edit
/// design. The test mirrors each edit onto a client-side spec and
/// compares against the from-scratch command layer.
#[test]
fn session_edits_are_bit_identical_to_stateless_analysis() {
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let json = mpeg2_spec_json();
    let mut mirror = SystemSpec::from_json(&json).expect("round-trips");

    let opened = request_full(addr, "POST", "/session", &json);
    assert_eq!(opened.status, 200, "{}", opened.body);
    let id = opened
        .header("x-ermes-session")
        .expect("open returns the session id")
        .to_string();
    assert_eq!(
        opened.body,
        ermesd::cmd_analyze(&mirror).expect("analyzes"),
        "the opening analysis matches the CLI"
    );
    let edit_path = format!("/session/{id}/edit");

    // Re-select a process with a multi-point frontier, there and back.
    let pi = mirror
        .processes
        .iter()
        .position(|p| p.pareto.as_ref().is_some_and(|f| f.len() >= 2))
        .expect("mpeg2 has a multi-point frontier");
    let pname = mirror.processes[pi].name.clone();
    for point in [1usize, 0] {
        let body = format!(r#"{{"reselect": {{"process": "{pname}", "point": {point}}}}}"#);
        let reply = request_full(addr, "POST", &edit_path, &body);
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(reply.header("x-ermes-session"), Some(id.as_str()));
        // Mirror the edit: selection round-trips through the spec as the
        // declared latency snapping to the matching frontier point.
        mirror.processes[pi].latency = mirror.processes[pi].pareto.as_ref().unwrap()[point].latency;
        assert_eq!(
            reply.body,
            ermesd::cmd_analyze(&mirror).expect("analyzes"),
            "reselect to point {point} diverged from a from-scratch analysis"
        );
    }

    // Reorder a multi-input process: reverse its get order.
    let qi = mirror
        .processes
        .iter()
        .position(|p| p.get_order.as_ref().is_some_and(|g| g.len() >= 2))
        .expect("mpeg2 has a multi-input process");
    let qname = mirror.processes[qi].name.clone();
    let mut gets = mirror.processes[qi]
        .get_order
        .clone()
        .expect("from_design sets orders");
    gets.reverse();
    let puts = mirror.processes[qi]
        .put_order
        .clone()
        .expect("from_design sets orders");
    let quoted = |names: &[String]| {
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let body = format!(
        r#"{{"reorder": {{"process": "{qname}", "gets": [{}], "puts": [{}]}}}}"#,
        quoted(&gets),
        quoted(&puts)
    );
    let reply = request_full(addr, "POST", &edit_path, &body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    mirror.processes[qi].get_order = Some(gets);
    assert_eq!(
        reply.body,
        ermesd::cmd_analyze(&mirror).expect("analyzes"),
        "reorder diverged from a from-scratch analysis"
    );

    // Close; the id is gone for edits and for a second close alike.
    assert_eq!(
        request(addr, "DELETE", &format!("/session/{id}"), "").0,
        200
    );
    assert_eq!(post(addr, &edit_path, &body).0, 404);
    assert_eq!(
        request(addr, "DELETE", &format!("/session/{id}"), "").0,
        404
    );
    shutdown(addr, handle);
}

/// `/verify` certifies a live spec bit-identically to the CLI command,
/// and `/session/{id}/verify` tracks the session's *current* design
/// across edits rather than the spec it was opened with.
#[test]
fn verify_endpoints_certify_and_track_session_edits() {
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let json = mpeg2_spec_json();
    let mut mirror = SystemSpec::from_json(&json).expect("round-trips");

    // Stateless: the daemon's certificate is the CLI's, byte for byte.
    let (status, body) = post(addr, "/verify", &json);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("CERTIFIED deadlock-free"), "{body}");
    assert!(body.contains("f64 bit-identical"), "{body}");
    assert_eq!(body, ermesd::cmd_verify(&mirror).expect("verifies"));

    // A structurally broken spec is refuted with a witness, not a 4xx:
    // the request itself is well-formed.
    let (status, body) = post(
        addr,
        "/verify",
        r#"{"processes": [{"name": "a", "latency": 1}, {"name": "b", "latency": 1}],
            "channels": [{"name": "f", "from": "a", "to": "b", "latency": 1},
                         {"name": "r", "from": "b", "to": "a", "latency": 1}]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("REFUTED"), "{body}");
    assert!(body.contains("token-free cycle"), "{body}");

    // Stateful: open a session, verify, edit, verify again — each
    // certificate matches a from-scratch `verify` of the mirrored spec.
    let opened = request_full(addr, "POST", "/session", &json);
    assert_eq!(opened.status, 200, "{}", opened.body);
    let id = opened.header("x-ermes-session").expect("id").to_string();
    let verify_path = format!("/session/{id}/verify");

    let reply = request_full(addr, "POST", &verify_path, "");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.header("x-ermes-session"), Some(id.as_str()));
    assert_eq!(reply.body, ermesd::cmd_verify(&mirror).expect("verifies"));

    let pi = mirror
        .processes
        .iter()
        .position(|p| p.pareto.as_ref().is_some_and(|f| f.len() >= 2))
        .expect("mpeg2 has a multi-point frontier");
    let pname = mirror.processes[pi].name.clone();
    let edit = format!(r#"{{"reselect": {{"process": "{pname}", "point": 1}}}}"#);
    let (status, body) = post(addr, &format!("/session/{id}/edit"), &edit);
    assert_eq!(status, 200, "{body}");
    mirror.processes[pi].latency = mirror.processes[pi].pareto.as_ref().unwrap()[1].latency;

    let reply = request_full(addr, "POST", &verify_path, "");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply.body,
        ermesd::cmd_verify(&mirror).expect("verifies"),
        "session verify must see the post-edit design"
    );

    // Gone session: clean 404.
    assert_eq!(
        request(addr, "DELETE", &format!("/session/{id}"), "").0,
        200
    );
    assert_eq!(post(addr, &verify_path, "").0, 404);
    shutdown(addr, handle);
}

/// Sessions are LRU-bounded, invalid edits fail without killing the
/// session, and the lifecycle counters add up on `/metrics`.
#[test]
fn sessions_are_lru_bounded_and_bad_edits_fail_cleanly() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        session_capacity: 1,
        ..ServerConfig::default()
    });
    let json = mpeg2_spec_json();
    let spec = SystemSpec::from_json(&json).expect("round-trips");
    let open = |_| {
        let reply = request_full(addr, "POST", "/session", &json);
        assert_eq!(reply.status, 200, "{}", reply.body);
        reply
            .header("x-ermes-session")
            .expect("id header")
            .to_string()
    };

    let a = open(());
    let a_edit = format!("/session/{a}/edit");
    // Malformed, unknown-name, and out-of-range edits are clean client
    // errors; none of them consumes the session.
    assert_eq!(post(addr, &a_edit, "not json").0, 400);
    assert_eq!(
        post(
            addr,
            &a_edit,
            r#"{"reselect": {"process": "ghost", "point": 0}}"#
        )
        .0,
        400
    );
    let pname = &spec
        .processes
        .iter()
        .find(|p| p.pareto.is_some())
        .expect("a process with a frontier")
        .name;
    let (status, body) = post(
        addr,
        &a_edit,
        &format!(r#"{{"reselect": {{"process": "{pname}", "point": 999}}}}"#),
    );
    assert_eq!(status, 422, "{body}");

    // Still alive after the failures: a valid edit succeeds.
    let ok_edit = format!(r#"{{"reselect": {{"process": "{pname}", "point": 0}}}}"#);
    assert_eq!(post(addr, &a_edit, &ok_edit).0, 200);

    // Capacity 1: opening a second session evicts the first.
    let b = open(());
    assert_ne!(a, b, "session ids are never reused");
    assert_eq!(
        post(addr, &a_edit, &ok_edit).0,
        404,
        "evicted session is gone"
    );
    assert_eq!(post(addr, &format!("/session/{b}/edit"), &ok_edit).0, 200);

    // Route-shape errors.
    assert_eq!(get(addr, &format!("/session/{b}/edit")).0, 405);
    assert_eq!(get(addr, "/session").0, 405);
    assert_eq!(post(addr, "/session/abc/edit", &ok_edit).0, 404);
    assert_eq!(request(addr, "DELETE", "/session/abc", "").0, 404);

    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(metric_value(&metrics, "ermes_sessions_live"), 1);
    assert_eq!(metric_value(&metrics, "ermes_session_opened_total"), 2);
    assert_eq!(metric_value(&metrics, "ermes_session_evicted_total"), 1);
    assert_eq!(metric_value(&metrics, "ermes_session_edits_total"), 2);
    assert_eq!(
        metric_value(
            &metrics,
            "ermesd_requests_total{endpoint=\"session_edit\",status=\"200\"}"
        ),
        2
    );

    assert_eq!(request(addr, "DELETE", &format!("/session/{b}"), "").0, 200);
    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(metric_value(&metrics, "ermes_sessions_live"), 0);
    assert_eq!(metric_value(&metrics, "ermes_session_closed_total"), 1);
    shutdown(addr, handle);
}

#[test]
fn healthz_and_keep_alive_roundtrip() {
    let (addr, handle) = start(ServerConfig::default());
    // Two requests over one keep-alive connection.
    let mut stream = TcpStream::connect(addr).expect("reachable");
    for _ in 0..2 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("written");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("status");
        assert!(line.starts_with("HTTP/1.1 200"), "{line}");
        let mut content_length = 0;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header");
            if header.trim_end().is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        // First line is the stable probe token; the rest reports worker
        // liveness and restart history.
        let text = String::from_utf8(body).expect("utf-8");
        assert_eq!(text.lines().next(), Some("ok"), "{text}");
        assert!(text.contains("alive"), "{text}");
        assert!(text.contains("worker restarts: 0"), "{text}");
    }
    shutdown(addr, handle);
}
