//! Stateful analysis sessions: the store behind `POST /session`,
//! `POST /session/{id}/edit`, and `DELETE /session/{id}`.
//!
//! A session pins an [`ermes::DeltaState`] — the design, its lowered
//! TMG, and the per-SCC analysis — across requests, so an interactive
//! client pays the incremental dirty-SCC cost per edit instead of the
//! full parse → lower → analyze pipeline. The store is an LRU with the
//! same tick-stamp discipline as the server's per-design cache LRU:
//! sessions are touched on every edit and the least recently used one
//! is evicted when a new session would exceed the configured capacity,
//! so daemon memory stays bounded regardless of how many sessions
//! clients open and abandon.
//!
//! Each session's state sits behind its own mutex: edits to one session
//! serialize (they must — the delta analysis is stateful), edits to
//! different sessions run concurrently on the worker pool. A panicked
//! edit poisons only that session's mutex; the server drops the session
//! and every other session keeps working (the same isolation the pool
//! gives stateless requests).

use crate::commands::CliError;
use crate::json::{self, Value};
use ermes::DeltaState;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use sysgraph::{ChannelId, ProcessId};

/// Bounded LRU of live sessions plus the monotone counters served at
/// `GET /metrics` (counters survive session eviction and removal).
#[derive(Debug)]
pub(crate) struct SessionStore {
    inner: Mutex<StoreInner>,
    /// Sessions opened over the server's lifetime.
    pub(crate) opened: AtomicU64,
    /// Edits applied successfully over the server's lifetime.
    pub(crate) edits: AtomicU64,
    /// Sessions closed by an explicit `DELETE`.
    pub(crate) closed: AtomicU64,
    /// Sessions evicted by the LRU bound.
    pub(crate) evicted: AtomicU64,
    /// Sessions dropped because an edit panicked on its worker.
    pub(crate) dropped: AtomicU64,
}

#[derive(Debug)]
struct StoreInner {
    entries: HashMap<u64, (Arc<Mutex<DeltaState>>, u64)>,
    tick: u64,
    next_id: u64,
    capacity: usize,
}

impl SessionStore {
    pub(crate) fn new(capacity: usize) -> SessionStore {
        SessionStore {
            inner: Mutex::new(StoreInner {
                entries: HashMap::new(),
                tick: 0,
                next_id: 1,
                capacity: capacity.max(1),
            }),
            opened: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Stores a freshly opened session, evicting the least recently used
    /// one when at capacity, and returns its id.
    pub(crate) fn insert(&self, state: DeltaState) -> u64 {
        let mut inner = self.inner.lock().expect("session store poisoned");
        inner.tick += 1;
        if inner.entries.len() >= inner.capacity {
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&id, _)| id)
            {
                inner.entries.remove(&oldest);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let tick = inner.tick;
        inner
            .entries
            .insert(id, (Arc::new(Mutex::new(state)), tick));
        self.opened.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// The session for `id`, touched for LRU purposes; `None` when the
    /// id is unknown (never issued, closed, evicted, or dropped).
    pub(crate) fn get(&self, id: u64) -> Option<Arc<Mutex<DeltaState>>> {
        let mut inner = self.inner.lock().expect("session store poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(&id).map(|(state, stamp)| {
            *stamp = tick;
            Arc::clone(state)
        })
    }

    /// Removes `id`; true when it was live. `counter` receives the
    /// removal (the closed or dropped tally, depending on the cause).
    pub(crate) fn remove(&self, id: u64, counter: &AtomicU64) -> bool {
        let removed = self
            .inner
            .lock()
            .expect("session store poisoned")
            .entries
            .remove(&id)
            .is_some();
        if removed {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Number of live sessions.
    pub(crate) fn live(&self) -> usize {
        self.inner
            .lock()
            .expect("session store poisoned")
            .entries
            .len()
    }
}

/// One parsed `POST /session/{id}/edit` body. Element names are
/// resolved against the session's design only once the edit job holds
/// the session lock, so a stale name maps to a clean client error, not
/// a race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EditRequest {
    /// `{"reselect": {"process": <name>, "point": <index>}}` — pick
    /// Pareto point `point` for the named process (a latency-only edit;
    /// dirty-SCC reprice).
    Reselect {
        /// Process name.
        process: String,
        /// Index into the process's Pareto frontier.
        point: usize,
    },
    /// `{"reorder": {"process": <name>, "gets": [...], "puts": [...]}}`
    /// — replace the named process's channel-access orders (a
    /// structural edit; rebuild with per-component reuse).
    Reorder {
        /// Process name.
        process: String,
        /// New `get` order, as channel names.
        gets: Vec<String>,
        /// New `put` order, as channel names.
        puts: Vec<String>,
    },
}

fn name_list(value: &Value, op: &str, key: &str) -> Result<Vec<String>, String> {
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("`{op}` requires a `{key}` array of channel names"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{op}.{key}` entries must be strings"))
        })
        .collect()
}

/// Parses an edit request body. Errors are client-facing messages (the
/// server wraps them in a 400).
pub(crate) fn parse_edit(text: &str) -> Result<EditRequest, String> {
    let value = json::parse(text).map_err(|e| format!("malformed edit body: {e}"))?;
    if let Some(edit) = value.get("reselect") {
        let process = edit
            .get("process")
            .and_then(Value::as_str)
            .ok_or("`reselect` requires a `process` name")?
            .to_string();
        let point = edit
            .get("point")
            .and_then(Value::as_u64)
            .ok_or("`reselect` requires a non-negative integer `point`")?;
        return Ok(EditRequest::Reselect {
            process,
            point: point as usize,
        });
    }
    if let Some(edit) = value.get("reorder") {
        let process = edit
            .get("process")
            .and_then(Value::as_str)
            .ok_or("`reorder` requires a `process` name")?
            .to_string();
        return Ok(EditRequest::Reorder {
            gets: name_list(edit, "reorder", "gets")?,
            puts: name_list(edit, "reorder", "puts")?,
            process,
        });
    }
    Err("edit body must contain a `reselect` or `reorder` object".into())
}

fn find_process(state: &DeltaState, name: &str) -> Result<ProcessId, CliError> {
    let sys = state.design().system();
    sys.process_ids()
        .find(|&p| sys.process(p).name() == name)
        .ok_or_else(|| CliError::Usage(format!("no process named `{name}`")))
}

fn find_channels(state: &DeltaState, names: &[String]) -> Result<Vec<ChannelId>, CliError> {
    let sys = state.design().system();
    names
        .iter()
        .map(|name| {
            (0..sys.channel_count())
                .map(ChannelId::from_index)
                .find(|&c| sys.channel(c).name() == name)
                .ok_or_else(|| CliError::Usage(format!("no channel named `{name}`")))
        })
        .collect()
}

/// Resolves `edit`'s names against the session's design and applies it.
/// Runs under the session lock on a pool worker.
///
/// # Errors
///
/// - [`CliError::Usage`] (→ 400) on unknown process/channel names; the
///   state is unchanged.
/// - [`CliError::Ermes`] (→ 422) on a rejected edit (selection out of
///   range, non-permutation order); the state is unchanged.
/// - [`CliError::Ermes`] with [`ermes::ErmesError::Cancelled`] (→ 429 /
///   499 / 503) when `cancel` fired mid-analysis; the edit *is* applied
///   and the next edit (or refresh) settles the analysis first.
pub(crate) fn apply_edit(
    state: &mut DeltaState,
    edit: &EditRequest,
    cancel: Option<&parx::CancelToken>,
) -> Result<(), CliError> {
    match edit {
        EditRequest::Reselect { process, point } => {
            let p = find_process(state, process)?;
            state.reselect(p, *point, cancel)?;
        }
        EditRequest::Reorder {
            process,
            gets,
            puts,
        } => {
            let p = find_process(state, process)?;
            let gets = find_channels(state, gets)?;
            let puts = find_channels(state, puts)?;
            state.reorder(p, gets, puts, cancel)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_bodies_parse_and_reject_cleanly() {
        assert_eq!(
            parse_edit(r#"{"reselect": {"process": "dct", "point": 2}}"#),
            Ok(EditRequest::Reselect {
                process: "dct".into(),
                point: 2
            })
        );
        assert_eq!(
            parse_edit(r#"{"reorder": {"process": "dct", "gets": ["a"], "puts": ["b", "c"]}}"#),
            Ok(EditRequest::Reorder {
                process: "dct".into(),
                gets: vec!["a".into()],
                puts: vec!["b".into(), "c".into()]
            })
        );
        assert!(parse_edit("{").is_err());
        assert!(parse_edit("{}").is_err());
        assert!(parse_edit(r#"{"reselect": {"process": "dct"}}"#).is_err());
        assert!(parse_edit(r#"{"reselect": {"process": "dct", "point": -1}}"#).is_err());
        assert!(parse_edit(r#"{"reorder": {"process": "dct", "gets": ["a"]}}"#).is_err());
        assert!(parse_edit(r#"{"reorder": {"process": "dct", "gets": [1], "puts": []}}"#).is_err());
    }

    fn sample_state() -> DeltaState {
        let spec = crate::spec::SystemSpec::from_json(
            r#"{
                "processes": [
                    {"name": "a", "latency": 2},
                    {"name": "b", "latency": 3}
                ],
                "channels": [
                    {"name": "f", "from": "a", "to": "b", "latency": 1},
                    {"name": "r", "from": "b", "to": "a", "latency": 1, "initial_tokens": 1}
                ]
            }"#,
        )
        .expect("valid");
        DeltaState::open(spec.to_design().expect("valid"))
    }

    #[test]
    fn store_is_lru_with_touch_on_edit_lookup() {
        let store = SessionStore::new(2);
        let a = store.insert(sample_state());
        let b = store.insert(sample_state());
        assert_eq!(store.live(), 2);
        // Touch a: b becomes the LRU victim.
        assert!(store.get(a).is_some());
        let c = store.insert(sample_state());
        assert_eq!(store.evicted.load(Ordering::Relaxed), 1);
        assert!(store.get(a).is_some(), "touched session survives");
        assert!(store.get(b).is_none(), "LRU victim is the untouched one");
        assert!(store.get(c).is_some());
        // Ids are never reused, even after removal.
        assert!(store.remove(a, &store.closed));
        assert!(!store.remove(a, &store.closed), "second remove is a no-op");
        assert_eq!(store.closed.load(Ordering::Relaxed), 1);
        let d = store.insert(sample_state());
        assert!(d > c);
    }

    #[test]
    fn unknown_names_are_usage_errors_and_leave_state_unchanged() {
        let mut state = sample_state();
        let before = state.report().clone();
        let err = apply_edit(
            &mut state,
            &EditRequest::Reselect {
                process: "ghost".into(),
                point: 0,
            },
            None,
        )
        .expect_err("unknown process");
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = apply_edit(
            &mut state,
            &EditRequest::Reorder {
                process: "a".into(),
                gets: vec!["ghost".into()],
                puts: vec!["f".into()],
            },
            None,
        )
        .expect_err("unknown channel");
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert_eq!(state.report(), &before);
    }
}
