//! Coordinator-side cluster machinery: consistent-hash placement,
//! health-probed workers, and fault-tolerant subjob dispatch.
//!
//! A coordinator ermesd owns a set of worker ermesd addresses. Work is
//! placed on a consistent-hash **ring** (virtual nodes per worker) keyed
//! by the job's content, so the same (design, target) lands on the same
//! worker run after run — that worker's [`ermes::EngineCache`] stays
//! warm — and the death of one worker moves only that worker's keys to
//! their ring successors instead of reshuffling everything.
//!
//! Failure handling is layered:
//!
//! - a background prober polls each worker's `/healthz` and feeds a
//!   hysteresis [`parx::HealthTracker`] (Up → Suspect → Down), so one
//!   dropped packet cannot flap routing;
//! - each subjob dispatch walks the ring's replica order, skipping
//!   `Down` workers, with capped-exponential-backoff retries
//!   ([`parx::Backoff`], seeded by the placement key — deterministic);
//! - a straggling subjob is **hedged**: after `hedge_after_ms` without
//!   an answer the same request is sent to the next replica and the
//!   first response wins (safe because every response is deterministic,
//!   so duplicates are bit-identical by construction);
//! - when every worker is `Down` or every attempt failed, the caller
//!   (server layer) falls back to local in-process execution — the
//!   cluster degrades to exactly the single-node daemon.
//!
//! Chaos testing hooks in at the single point every worker exchange
//! passes through: the `cluster.request` faultpoint, whose network
//! actions (`conn.refuse`, `conn.reset`, `resp.truncate`,
//! `resp.delay(MS)`) are enacted here at the matching protocol stage.
//! Health probes bypass the faultpoint so a seeded plan's decision
//! stream is consumed by dispatches only, in dispatch order — the
//! property that makes a cluster chaos failure replayable.

use crate::http::{read_response, write_request, ClientResponse};
use crate::metrics::ClusterMetrics;
use ermes::SweepPoint;
use parx::{Backoff, Fault, HealthState, HealthTracker};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Virtual nodes per worker: enough that keys spread evenly with a
/// handful of workers, few enough that ring construction is free.
const VNODES_PER_WORKER: usize = 128;

/// Cap on a worker response the coordinator will buffer (an explore
/// report over a large SoC; sweep-point lines are tiny).
const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// Configuration of the coordinator's worker cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker addresses (`host:port`), as given to `--workers`.
    pub workers: Vec<String>,
    /// Interval between `/healthz` probe rounds, in milliseconds.
    pub probe_interval_ms: u64,
    /// Consecutive failures before a worker turns `Suspect`.
    pub suspect_after: u32,
    /// Consecutive failures before a worker turns `Down`.
    pub down_after: u32,
    /// Consecutive successes before a demoted worker turns `Up` again.
    pub up_after: u32,
    /// Per-exchange socket timeout (connect, read, write), ms.
    pub subjob_timeout_ms: u64,
    /// Dispatch attempts per subjob before giving up (≥ 1). Attempts
    /// after the first walk to the next live ring replica.
    pub attempts: u32,
    /// Base of the capped-exponential retry backoff, ms.
    pub backoff_base_ms: u64,
    /// Cap of the retry backoff, ms.
    pub backoff_cap_ms: u64,
    /// How long to wait on a subjob before hedging it to the next
    /// replica, ms; `0` disables hedging.
    pub hedge_after_ms: u64,
}

impl ClusterConfig {
    /// Defaults tuned for LAN workers; only the address list is
    /// required.
    #[must_use]
    pub fn new(workers: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            workers,
            probe_interval_ms: 200,
            suspect_after: 1,
            down_after: 3,
            up_after: 2,
            subjob_timeout_ms: 30_000,
            attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            hedge_after_ms: 1_500,
        }
    }
}

/// Why a dispatch could not produce a worker response. Every variant is
/// an instruction to the server layer to run the job locally (degraded
/// mode) — a coordinator never surfaces cluster trouble to the client.
#[derive(Debug)]
pub(crate) enum DispatchError {
    /// Every worker is `Down`; nothing was sent.
    NoLiveWorkers,
    /// All attempts failed; carries the last failure for the log.
    Exhausted { attempts: u32, last_error: String },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::NoLiveWorkers => write!(f, "no live workers"),
            DispatchError::Exhausted {
                attempts,
                last_error,
            } => {
                write!(f, "{attempts} attempts exhausted (last: {last_error})")
            }
        }
    }
}

struct WorkerSlot {
    addr: String,
    health: Mutex<HealthTracker>,
}

/// One request as it travels to a worker; owned so hedge threads can
/// share it.
struct Wire {
    method: String,
    target: String,
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

/// Where a returned worker span tree should be stitched, shared by every
/// exchange thread of one dispatch. `settled` is claimed by the first
/// response the dispatcher would accept (a non-retryable status); that
/// exchange's tree grafts as `role=winner`, every duplicate — a hedge
/// partner or a late retry straggler — as `role=loser`. Best-effort: the
/// claim races the channel, so under a hedge tie the labels can swap.
#[derive(Clone)]
struct GraftPlan {
    ctx: trace::Context,
    settled: Arc<AtomicBool>,
}

/// The coordinator's view of its worker fleet.
pub(crate) struct Cluster {
    config: ClusterConfig,
    workers: Vec<WorkerSlot>,
    /// Sorted `(vnode hash, worker index)` pairs.
    ring: Vec<(u64, usize)>,
    pub(crate) metrics: ClusterMetrics,
    stop: AtomicBool,
    prober: Mutex<Option<JoinHandle<()>>>,
}

impl Cluster {
    /// Builds the ring and starts the background health prober.
    pub(crate) fn start(config: ClusterConfig) -> Arc<Cluster> {
        let workers: Vec<WorkerSlot> = config
            .workers
            .iter()
            .map(|addr| WorkerSlot {
                addr: addr.clone(),
                health: Mutex::new(HealthTracker::new(
                    config.suspect_after,
                    config.down_after,
                    config.up_after,
                )),
            })
            .collect();
        let mut ring: Vec<(u64, usize)> = (0..workers.len())
            .flat_map(|w| {
                let addr = workers[w].addr.clone();
                (0..VNODES_PER_WORKER)
                    .map(move |v| (mix64(fnv1a(format!("{addr}#{v}").as_bytes())), w))
            })
            .collect();
        ring.sort_unstable();
        let cluster = Arc::new(Cluster {
            config,
            workers,
            ring,
            metrics: ClusterMetrics::default(),
            stop: AtomicBool::new(false),
            prober: Mutex::new(None),
        });
        if !cluster.workers.is_empty() {
            let for_probe = Arc::clone(&cluster);
            let handle = std::thread::Builder::new()
                .name("ermesd-prober".into())
                .spawn(move || probe_loop(&for_probe))
                .expect("spawn prober thread");
            *cluster.prober.lock().expect("prober slot poisoned") = Some(handle);
        }
        cluster
    }

    /// Stops and joins the prober. Called at drain, after in-flight
    /// forwarded subjobs have finished.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.prober.lock().expect("prober slot poisoned").take() {
            let _ = handle.join();
        }
    }

    /// `(address, health state)` per worker, in configuration order.
    pub(crate) fn worker_states(&self) -> Vec<(&str, HealthState)> {
        self.workers
            .iter()
            .map(|w| {
                (
                    w.addr.as_str(),
                    w.health.lock().expect("health poisoned").state(),
                )
            })
            .collect()
    }

    fn state_of(&self, w: usize) -> HealthState {
        self.workers[w]
            .health
            .lock()
            .expect("health poisoned")
            .state()
    }

    fn record_outcome(&self, w: usize, ok: bool) {
        let mut health = self.workers[w].health.lock().expect("health poisoned");
        if ok {
            health.record_success();
        } else {
            health.record_failure();
        }
    }

    /// Distinct workers in ring order starting at `key`'s successor.
    /// All workers appear (health is applied at dispatch time, so a
    /// recovered worker reclaims its keys automatically). The key is
    /// scrambled through [`mix64`] first so placement stays uniform even
    /// for keys whose raw bits are clustered.
    pub(crate) fn replicas(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.workers.len());
        if self.ring.is_empty() {
            return order;
        }
        let key = mix64(key);
        let start = self.ring.partition_point(|&(h, _)| h < key);
        for i in 0..self.ring.len() {
            let (_, w) = self.ring[(start + i) % self.ring.len()];
            if !order.contains(&w) {
                order.push(w);
                if order.len() == self.workers.len() {
                    break;
                }
            }
        }
        order
    }

    /// Sends one subjob to the ring, with retries and hedging. Returns
    /// the first complete worker response (any status — the caller
    /// decides which statuses to relay and which to retry locally).
    ///
    /// Retries here cover *transport* failures; HTTP-level shedding
    /// (429/503) and panic isolation (500) also count as retryable
    /// because a replica or a later attempt can serve the same bytes —
    /// determinism makes re-dispatch free of split-brain concerns.
    pub(crate) fn dispatch(
        self: &Arc<Self>,
        key: u64,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, DispatchError> {
        let _dispatch_span = trace::span("dispatch");
        trace::attr("target", target);
        let order = self.replicas(key);
        if order.is_empty() {
            trace::attr("outcome", "no_live_workers");
            return Err(DispatchError::NoLiveWorkers);
        }
        let mut headers: Vec<(&'static str, String)> = Vec::new();
        let ctx = trace::current_context();
        if ctx.is_active() {
            headers.push((
                "x-ermes-trace",
                format!("{}/{}", ctx.trace_id(), ctx.parent()),
            ));
            // Ask the worker to append its span tree to the response so
            // it can be stitched under this dispatch span. Only traced
            // coordinator requests carry this, so direct clients keep
            // byte-identical bodies.
            headers.push(("x-ermes-trace-tree", "1".to_string()));
        }
        let graft = GraftPlan {
            ctx,
            settled: Arc::new(AtomicBool::new(false)),
        };
        let wire = Arc::new(Wire {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: body.to_vec(),
        });
        let mut backoff =
            Backoff::new(self.config.backoff_base_ms, self.config.backoff_cap_ms, key);
        let mut last_error = String::new();
        let attempts = self.config.attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                self.metrics.record_retry();
                // A request that needed a retry is worth keeping whole.
                trace::flight::flag(ctx.trace_id(), "retried");
                std::thread::sleep(backoff.delay(attempt - 1));
            }
            let live: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&w| self.state_of(w) != HealthState::Down)
                .collect();
            if live.is_empty() {
                trace::attr("outcome", "no_live_workers");
                return Err(DispatchError::NoLiveWorkers);
            }
            let primary = live[attempt as usize % live.len()];
            let hedge = (live.len() > 1 && self.config.hedge_after_ms > 0)
                .then(|| live[(attempt as usize + 1) % live.len()]);
            self.metrics.record_subjob();
            match self.exchange_hedged(primary, hedge, &wire, &graft) {
                Ok(response) if retryable_status(response.status) => {
                    last_error = format!(
                        "worker returned {} ({})",
                        response.status,
                        String::from_utf8_lossy(&response.body).trim()
                    );
                }
                Ok(response) => {
                    trace::attr("outcome", "ok");
                    trace::attr("attempts", attempt + 1);
                    return Ok(response);
                }
                Err(e) => last_error = e.to_string(),
            }
        }
        trace::attr("outcome", "exhausted");
        Err(DispatchError::Exhausted {
            attempts,
            last_error,
        })
    }

    /// One exchange with `primary`, hedged to `hedge` if no answer
    /// arrives within `hedge_after_ms`. First completed response wins;
    /// each worker's health is credited/debited individually.
    fn exchange_hedged(
        self: &Arc<Self>,
        primary: usize,
        hedge: Option<usize>,
        wire: &Arc<Wire>,
        graft: &GraftPlan,
    ) -> std::io::Result<ClientResponse> {
        let (tx, rx) = mpsc::channel();
        self.spawn_exchange(primary, wire, tx.clone(), graft);
        let mut outstanding = 1u32;
        let budget = Duration::from_millis(self.config.subjob_timeout_ms.max(1));
        let mut first_result = match hedge {
            None => None,
            Some(h) => match rx.recv_timeout(Duration::from_millis(self.config.hedge_after_ms)) {
                Ok(result) => Some(result),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.metrics.record_hedge();
                    trace::attr("hedged", 1);
                    self.spawn_exchange(h, wire, tx.clone(), graft);
                    outstanding += 1;
                    None
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("tx is still alive in this scope")
                }
            },
        };
        drop(tx);
        loop {
            let result = match first_result.take() {
                Some(result) => result,
                None => match rx.recv_timeout(budget) {
                    Ok(result) => result,
                    Err(_) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "subjob timed out on every in-flight worker",
                        ))
                    }
                },
            };
            outstanding -= 1;
            match result {
                Ok(response) => return Ok(response),
                Err(e) if outstanding == 0 => return Err(e),
                Err(_) => {} // the hedge partner is still running
            }
        }
    }

    fn spawn_exchange(
        self: &Arc<Self>,
        worker: usize,
        wire: &Arc<Wire>,
        tx: mpsc::Sender<std::io::Result<ClientResponse>>,
        graft: &GraftPlan,
    ) {
        let cluster = Arc::clone(self);
        let wire = Arc::clone(wire);
        let graft = graft.clone();
        std::thread::spawn(move || {
            let _adopted = trace::adopt(graft.ctx);
            let timeout = Duration::from_millis(cluster.config.subjob_timeout_ms.max(1));
            // Send/recv stamps on *this* clock bracket the exchange: they
            // are the Cristian window the worker's tree is aligned into.
            let send_ns = trace::now_ns();
            let mut result = send_once(&cluster.workers[worker].addr, &wire, timeout);
            let recv_ns = trace::now_ns();
            // Transport outcome feeds health; an HTTP error status is
            // still a live worker.
            cluster.record_outcome(worker, result.is_ok());
            if let Ok(response) = &mut result {
                // Strip unconditionally: the caller (and the client) must
                // see exactly the bytes a direct worker hit would return.
                let tree_text = strip_tree_trailer(&mut response.body);
                let accepted = !retryable_status(response.status)
                    && graft
                        .settled
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                if let Some(text) = tree_text {
                    if let Ok(tree) = trace::SpanTree::from_wire(&text) {
                        let role = if accepted { "winner" } else { "loser" };
                        trace::graft_tree(
                            &tree,
                            graft.ctx,
                            (send_ns, recv_ns),
                            &cluster.workers[worker].addr,
                            &[("role", role)],
                        );
                    }
                }
            }
            let _ = tx.send(result);
        });
    }

    /// Fetches `/metrics` from every worker not currently `Down`, for
    /// federation into the coordinator's exposition. Scrapes ride the
    /// probe path — no `cluster.request` faultpoint — so a seeded chaos
    /// plan's decision stream is still consumed by dispatches only, but
    /// their transport outcomes feed the same health tracker dispatch
    /// routes by.
    pub(crate) fn scrape_worker_metrics(&self) -> Vec<(String, String)> {
        let timeout = Duration::from_millis(self.config.subjob_timeout_ms.clamp(1, 2_000));
        let mut scraped = Vec::new();
        for w in 0..self.workers.len() {
            if self.state_of(w) == HealthState::Down {
                continue;
            }
            let addr = self.workers[w].addr.clone();
            match fetch_text(&addr, "/metrics", timeout) {
                Some(text) => {
                    self.record_outcome(w, true);
                    scraped.push((addr, text));
                }
                None => self.record_outcome(w, false),
            }
        }
        scraped
    }
}

/// Splits a worker response body at the trace-tree trailer, if present:
/// returns the wire document and truncates the body back to the exact
/// bytes a direct client would have received.
fn strip_tree_trailer(body: &mut Vec<u8>) -> Option<String> {
    let marker = trace::TRAILER_MARKER.as_bytes();
    let pos = body
        .windows(marker.len())
        .rposition(|window| window == marker)?;
    let tree = String::from_utf8_lossy(&body[pos + marker.len()..]).into_owned();
    body.truncate(pos);
    Some(tree)
}

/// Statuses worth retrying on another replica: shed (429), draining
/// (503), and an isolated worker-side panic (500). Anything else is a
/// deterministic verdict on the request itself (400/404/405/413/422) or
/// a success, and must be relayed verbatim for bit-identity.
fn retryable_status(status: u16) -> bool {
    matches!(status, 429 | 500 | 503)
}

/// One complete HTTP exchange with a worker, with the `cluster.request`
/// faultpoint enacted at the matching protocol stage.
fn send_once(addr: &str, wire: &Wire, timeout: Duration) -> std::io::Result<ClientResponse> {
    let fault = parx::faultpoint::hit("cluster.request");
    if fault == Fault::ConnRefuse {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "faultpoint `cluster.request`: injected connection refusal",
        ));
    }
    let sock_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("worker address `{addr}` did not resolve"),
        )
    })?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    {
        let mut writer = BufWriter::new(&stream);
        write_request(
            &mut writer,
            &wire.method,
            &wire.target,
            &wire.headers,
            &wire.body,
        )?;
    }
    if fault == Fault::ConnReset {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "faultpoint `cluster.request`: injected connection reset",
        ));
    }
    if let Fault::RespDelay(millis) = fault {
        // The straggler case: the response exists but is slow — this is
        // what the hedge timer races against.
        std::thread::sleep(Duration::from_millis(millis));
    }
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader, MAX_RESPONSE_BYTES)?;
    if fault == Fault::RespTruncate {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "faultpoint `cluster.request`: injected response truncation",
        ));
    }
    Ok(response)
}

/// `/healthz` probe round for every worker. Probes bypass the
/// faultpoint registry (see module docs) and only drive health state.
fn probe_loop(cluster: &Arc<Cluster>) {
    let interval = Duration::from_millis(cluster.config.probe_interval_ms.max(10));
    let timeout = interval.min(Duration::from_millis(1_000));
    while !cluster.stop.load(Ordering::Acquire) {
        for w in 0..cluster.workers.len() {
            if cluster.stop.load(Ordering::Acquire) {
                return;
            }
            let healthy = probe_once(&cluster.workers[w].addr, timeout);
            if !healthy {
                cluster.metrics.record_probe_failure();
            }
            cluster.record_outcome(w, healthy);
        }
        // Sleep in short slices so stop() returns promptly.
        let mut remaining = interval;
        while !remaining.is_zero() && !cluster.stop.load(Ordering::Acquire) {
            let slice = remaining.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            remaining -= slice;
        }
    }
}

/// One plain GET on the probe path (no faultpoint): the body as text on
/// a 200, `None` on any transport or HTTP failure.
fn fetch_text(addr: &str, target: &str, timeout: Duration) -> Option<String> {
    let sock_addr = addr.to_socket_addrs().ok()?.next()?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    {
        let mut writer = BufWriter::new(&stream);
        write_request(&mut writer, "GET", target, &[], b"").ok()?;
    }
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader, 4 * 1024 * 1024).ok()?;
    (response.status == 200).then(|| String::from_utf8_lossy(&response.body).into_owned())
}

/// One probe: healthy iff `/healthz` answers 200 with first line `ok`.
fn probe_once(addr: &str, timeout: Duration) -> bool {
    let Ok(mut it) = addr.to_socket_addrs() else {
        return false;
    };
    let Some(sock_addr) = it.next() else {
        return false;
    };
    let Ok(stream) = TcpStream::connect_timeout(&sock_addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    {
        let mut writer = BufWriter::new(&stream);
        if write_request(&mut writer, "GET", "/healthz", &[], b"").is_err() {
            return false;
        }
    }
    let mut reader = BufReader::new(&stream);
    match read_response(&mut reader, 64 * 1024) {
        Ok(response) => {
            response.status == 200
                && String::from_utf8_lossy(&response.body)
                    .lines()
                    .next()
                    .is_some_and(|line| line == "ok")
        }
        Err(_) => false,
    }
}

/// FNV-1a over raw bytes — placement keys and vnode hashes.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer. FNV-1a of short, similar strings (worker
/// addresses differing in one digit) leaves its high bits correlated,
/// which bunches vnodes on the ring; this scrambles them so the ring
/// arcs come out even.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Placement key for a subjob: content hash of the canonical spec JSON
/// (covering design, selections, and orderings — the same identity the
/// EngineCache keys on) combined with the target, so each ladder entry
/// of one design spreads over the ring while repeat sweeps of the same
/// design land on warm caches.
pub(crate) fn shard_key(spec_json: &str, target: u64) -> u64 {
    fnv1a(spec_json.as_bytes()) ^ target.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Parses the `x-ermes-trace: trace_id/span_id` header a coordinator
/// attaches to forwarded subjobs. Anything unparsable yields the
/// inactive context (adopting it is a no-op) — but a header that was
/// *present* and malformed is counted in
/// `ermes_trace_header_invalid_total`, because it means a peer thinks it
/// is propagating a trace and silently is not.
pub(crate) fn parse_trace_header(value: Option<&str>) -> trace::Context {
    let Some(value) = value else {
        return trace::Context::none();
    };
    let parsed = value.split_once('/').and_then(|(trace_id, parent)| {
        match (trace_id.trim().parse(), parent.trim().parse()) {
            (Ok(t), Ok(p)) => Some(trace::Context::from_parts(t, p)),
            _ => None,
        }
    });
    parsed.unwrap_or_else(|| {
        crate::metrics::record_trace_header_invalid();
        trace::Context::none()
    })
}

/// Exact wire form of one sweep point, as returned by a worker's
/// `/shard/sweeppoint`: `point TARGET NUM/DEN AREA_BITS MEETS`.
///
/// The cycle time travels as its exact rational and the area as the hex
/// of its IEEE-754 bits — the rendered table (`{:>11.4}`) would lose
/// precision, and the coordinator must reassemble *values*, then render
/// once through the shared renderer, to stay bit-identical with a
/// single-node sweep.
pub(crate) fn render_point_wire(point: &SweepPoint) -> String {
    format!(
        "point {} {}/{} {:016x} {}\n",
        point.target_cycle_time,
        point.cycle_time.numer(),
        point.cycle_time.denom(),
        point.area.to_bits(),
        u8::from(point.meets_target),
    )
}

/// Inverse of [`render_point_wire`]; `None` on any malformation (the
/// dispatcher then treats the response as a transport failure).
pub(crate) fn parse_point_wire(text: &str) -> Option<SweepPoint> {
    let line = text.lines().next()?;
    let mut fields = line.split(' ');
    if fields.next()? != "point" {
        return None;
    }
    let target_cycle_time = fields.next()?.parse().ok()?;
    let (num, den) = fields.next()?.split_once('/')?;
    let (num, den): (i64, i64) = (num.parse().ok()?, den.parse().ok()?);
    if den <= 0 || num < 0 {
        return None;
    }
    let area_bits = u64::from_str_radix(fields.next()?, 16).ok()?;
    let meets = fields.next()?;
    if fields.next().is_some() {
        return None;
    }
    Some(SweepPoint {
        target_cycle_time,
        cycle_time: tmg::Ratio::new(num, den),
        area: f64::from_bits(area_bits),
        meets_target: match meets {
            "1" => true,
            "0" => false,
            _ => return None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cluster(n: usize) -> Arc<Cluster> {
        // Unroutable TEST-NET addresses: the prober records failures
        // but nothing is dispatched in these unit tests.
        let mut config =
            ClusterConfig::new((0..n).map(|i| format!("192.0.2.{}:7878", i + 1)).collect());
        config.probe_interval_ms = 3_600_000; // effectively off
        Cluster::start(config)
    }

    #[test]
    fn replicas_cover_all_workers_without_duplicates() {
        let cluster = test_cluster(4);
        for key in [0, 1, u64::MAX / 2, u64::MAX, fnv1a(b"spec")] {
            let order = cluster.replicas(key);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "key {key}: {order:?}");
        }
        cluster.stop();
    }

    #[test]
    fn ring_spreads_keys_and_death_moves_only_the_dead_workers_keys() {
        let cluster = test_cluster(4);
        let mut owned = [0usize; 4];
        let mut moved = 0usize;
        for i in 0..4096u64 {
            let key = fnv1a(format!("job-{i}").as_bytes());
            let order = cluster.replicas(key);
            owned[order[0]] += 1;
            // Simulate worker 2 dying: dispatch filters it out; the key's
            // owner must stay put unless it *was* worker 2.
            let survivor = *order.iter().find(|&&w| w != 2).expect("3 survivors");
            if order[0] != 2 {
                assert_eq!(survivor, order[0], "key {key} moved needlessly");
            } else {
                moved += 1;
            }
        }
        for (w, count) in owned.iter().enumerate() {
            assert!(
                (512..=1536).contains(count),
                "worker {w} owns {count}/4096 keys — ring is unbalanced: {owned:?}"
            );
        }
        assert!(moved > 0, "worker 2 owned nothing?");
        cluster.stop();
    }

    #[test]
    fn same_key_same_owner_across_cluster_instances() {
        let a = test_cluster(3);
        let b = test_cluster(3);
        for i in 0..64u64 {
            let key = fnv1a(format!("k{i}").as_bytes());
            assert_eq!(a.replicas(key), b.replicas(key));
        }
        a.stop();
        b.stop();
    }

    #[test]
    fn point_wire_round_trips_exactly() {
        let point = SweepPoint {
            target_cycle_time: 1_200_000,
            cycle_time: tmg::Ratio::new(7_919, 3),
            area: 0.1 + 0.2, // a value whose decimal rendering lies
            meets_target: true,
        };
        let wire = render_point_wire(&point);
        let back = parse_point_wire(&wire).expect("parses");
        assert_eq!(back, point);
        assert_eq!(back.area.to_bits(), point.area.to_bits(), "exact bits");
    }

    #[test]
    fn malformed_point_wire_is_rejected() {
        for bad in [
            "",
            "point",
            "pt 1 1/1 0 1",
            "point x 1/1 0000000000000000 1",
            "point 1 1 0000000000000000 1",
            "point 1 1/0 0000000000000000 1",
            "point 1 -1/2 0000000000000000 1",
            "point 1 1/1 zz 1",
            "point 1 1/1 0000000000000000 2",
            "point 1 1/1 0000000000000000 1 extra",
        ] {
            assert!(parse_point_wire(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn trace_header_parses_or_falls_back_to_inactive() {
        let ctx = parse_trace_header(Some("12/34"));
        assert_eq!(ctx.trace_id(), 12);
        assert_eq!(ctx.parent(), 34);
        for bad in [None, Some(""), Some("12"), Some("a/b"), Some("12/")] {
            assert!(!parse_trace_header(bad).is_active(), "{bad:?}");
        }
    }

    #[test]
    fn malformed_trace_headers_are_counted_absent_and_valid_ones_are_not() {
        let before = crate::metrics::trace_header_invalid_total();
        let malformed = [
            Some(""),
            Some("12"),
            Some("a/b"),
            Some("12/"),
            Some("/34"),
            Some("12/34/56"),
            Some("0x1/2"),
            Some(" / "),
        ];
        for bad in malformed {
            assert!(!parse_trace_header(bad).is_active(), "{bad:?}");
        }
        // An absent header and a well-formed one are not "invalid".
        let _ = parse_trace_header(None);
        let _ = parse_trace_header(Some("12/34"));
        let counted = crate::metrics::trace_header_invalid_total() - before;
        // `>=` because the counter is process-global and other tests may
        // run concurrently; every malformed case above must have landed.
        assert!(
            counted >= malformed.len() as u64,
            "counted {counted} invalid headers, expected at least {}",
            malformed.len()
        );
    }

    #[test]
    fn tree_trailer_strips_back_to_client_bytes() {
        let original = b"point 1000 3/2 3fe0000000000000 1\n".to_vec();
        let mut with_tree = original.clone();
        with_tree.extend_from_slice(trace::TRAILER_MARKER.as_bytes());
        with_tree.extend_from_slice(b"ermes-trace/1 1\n7 0 1 0 10 request\n");
        let tree = strip_tree_trailer(&mut with_tree).expect("trailer found");
        assert_eq!(with_tree, original, "body restored to client bytes");
        let parsed = trace::SpanTree::from_wire(&tree).expect("wire parses");
        assert_eq!(parsed.record.name, "request");
        // A body without a trailer is left untouched.
        let mut plain = original.clone();
        assert!(strip_tree_trailer(&mut plain).is_none());
        assert_eq!(plain, original);
    }

    #[test]
    fn shard_key_separates_targets_and_designs() {
        let a = shard_key("{spec-a}", 1000);
        assert_eq!(a, shard_key("{spec-a}", 1000), "stable");
        assert_ne!(a, shard_key("{spec-a}", 2000));
        assert_ne!(a, shard_key("{spec-b}", 1000));
    }

    #[test]
    fn retryable_statuses_are_the_transient_ones() {
        for status in [429, 500, 503] {
            assert!(retryable_status(status), "{status}");
        }
        for status in [200, 400, 404, 405, 413, 422, 499] {
            assert!(!retryable_status(status), "{status}");
        }
    }
}
