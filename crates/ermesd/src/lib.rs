//! `ermesd` — the ERMES analysis service.
//!
//! The DAC'14 methodology is an *iterative* CAD loop: designers analyze,
//! reorder, re-select, and re-analyze against an evolving spec. Run as a
//! one-shot CLI, every invocation pays the full cost from a cold start;
//! run as a long-lived daemon, the memoized engine ([`ermes::EngineCache`])
//! amortizes across requests — the same serving architecture as an
//! inference stack: request admission, a cached backend, observability.
//!
//! The crate has three layers:
//!
//! - **Front end** ([`json`], [`spec`], [`commands`]): the on-disk JSON
//!   system-spec format and the pure command functions (`analyze`,
//!   `order`, `explore`, `sweep`, …). These moved here from `ermes-cli`
//!   (which re-exports them unchanged) so both the CLI and the daemon
//!   share one implementation — responses are **bit-identical** to the
//!   corresponding CLI invocation by construction.
//! - **Transport** ([`http`]): a hand-rolled HTTP/1.1 request parser and
//!   response writer on `std::net` only, per the workspace's
//!   no-unjustified-dependencies rule (no tokio, no hyper).
//! - **Service** ([`server`], [`metrics`]): a fixed worker pool over a
//!   bounded queue ([`parx::Pool`]) with load-shedding `429`s when the
//!   queue is full, per-request deadlines, a shared cross-request LRU of
//!   per-design [`ermes::EngineCache`]s, Prometheus-text `/metrics`, and
//!   graceful drain-on-shutdown.
//!
//! # Fault tolerance
//!
//! Long-running jobs are **cooperatively cancellable**: each request
//! carries a [`parx::CancelToken`] that self-cancels when the request
//! deadline passes and is cancelled by the server when the client hangs
//! up mid-run; the engine polls it at iteration boundaries, so a doomed
//! job frees its worker within one iteration instead of running to
//! completion. A mid-run deadline maps to `429` (with `retry-after` and
//! an `x-ermes-progress: completed/total` header), a disconnect to
//! `499`. A job that *panics* is isolated: the pool catches the panic,
//! respawns the worker, and only that request sees a `500`; the restart
//! shows up in `ermes_worker_restarts_total` and on `/healthz`. The
//! failure paths are exercised by a deterministic fault-injection
//! harness ([`parx::faultpoint`], env `ERMES_FAULTPOINTS`) that is
//! compiled into the production binary.
//!
//! # Cluster mode
//!
//! `ermesd --coordinator --workers host:port,...` turns a daemon into a
//! **coordinator** over a fleet of plain worker daemons ([`cluster`]):
//! `/explore` forwards whole requests and `/sweep` fans each ladder
//! target out as a `/shard/sweeppoint` subjob, placed on a
//! consistent-hash ring keyed by `(spec, target)` so repeat work lands
//! on warm worker caches. Robustness is layered: background `/healthz`
//! probes with hysteresis (up → suspect → down), per-subjob timeouts
//! with capped-exponential-backoff retries onto the next ring replica,
//! hedged dispatch for stragglers, and — when the cluster cannot serve
//! a job at all — degraded in-process execution. Because every subjob
//! is deterministic and the coordinator reassembles exact *values*
//! (re-rendered by the same code as the CLI), responses stay
//! **bit-identical to a single-node daemon** at any worker count, retry
//! schedule, or mid-job worker failure.
//!
//! Observability spans the fleet too: with tracing enabled the
//! coordinator asks each worker to append its subjob span tree to the
//! response (a trailer stripped before bytes reach the client) and
//! grafts it under the dispatching span with clock-offset alignment, so
//! `GET /trace` shows one cluster-wide tree whose nodes carry `host`
//! attributes, with retries and hedges as `winner`/`loser` sibling
//! subtrees. `GET /metrics` federates every worker's samples under a
//! `node` label next to the coordinator's own.
//!
//! # Endpoints
//!
//! | Route | Body | Response |
//! |---|---|---|
//! | `POST /analyze` | spec JSON | `ermes analyze` stdout |
//! | `POST /order` | spec JSON | `ermes order` stdout (report + ordered spec) |
//! | `POST /explore?target=N[&jobs=J]` | spec JSON | `ermes explore` stdout (sans cache-stats line) + explored spec |
//! | `POST /sweep?targets=a,b,c[&jobs=J]` | spec JSON | `ermes sweep` stdout (sans cache-stats line) |
//! | `POST /verify` | spec JSON | `ermes verify` stdout (deadlock certificate or counterexample) |
//! | `POST /shard/sweeppoint?target=N` | spec JSON | one sweep point in exact-value wire form (cluster-internal) |
//! | `POST /session` | spec JSON | full analysis + `x-ermes-session: {id}` header |
//! | `POST /session/{id}/edit` | edit JSON | full analysis after the edit, computed incrementally |
//! | `POST /session/{id}/verify` | — | certificate/counterexample for the session's current design |
//! | `DELETE /session/{id}` | — | closes the session |
//! | `GET /healthz` | — | `ok` + worker liveness, restart count, trace-journal occupancy |
//! | `GET /metrics` | — | Prometheus text format (coordinator federates worker samples under a `node` label) |
//! | `GET /trace` | — | recent span trees as JSON (`?n=` to bound) |
//! | `GET /trace/slow` | — | tail-sampled flight recorder: trees retained for slow/errored/degraded/retried requests |
//! | `POST /shutdown` | — | acknowledges, then drains in-flight work and exits |
//!
//! # Sessions
//!
//! The stateless endpoints re-run the full spec-parse → lower → analyze
//! pipeline per request. An *interactive* client — an IDE plugin, a
//! designer iterating on one system — edits one knob at a time, so the
//! daemon also offers stateful sessions: `POST /session` pins an
//! [`ermes::DeltaState`] server-side and every
//! `POST /session/{id}/edit` (`{"reselect": {"process": p, "point": n}}`
//! or `{"reorder": {"process": p, "gets": [...], "puts": [...]}}`)
//! re-analyzes incrementally — only the strongly connected components a
//! reselect's latency change touches are re-solved, and a reorder
//! rebuilds with untouched components reused. Every edit response is
//! bit-identical to `POST /analyze` on a spec capturing the session's
//! post-edit design; it is just computed in microseconds instead of
//! re-running the pipeline. Sessions live in an LRU bounded by
//! [`ServerConfig::session_capacity`]; edits follow the same deadline,
//! cancellation, and panic-isolation rules as stateless requests (a
//! panicked edit drops only its own session).
//!
//! The CLI's per-run cache-statistics line is deliberately absent from
//! daemon responses: under a shared warm cache those counters depend on
//! request history, which would break the bit-identity contract. The
//! same information is served, aggregated, at `GET /metrics`.
//!
//! ```no_run
//! let server = ermesd::Server::start(ermesd::ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ermesd::ServerConfig::default()
//! })?;
//! println!("listening on {}", server.addr());
//! server.run()?; // blocks until POST /shutdown, then drains
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod commands;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
mod session;
pub mod spec;

pub use cluster::ClusterConfig;
pub use commands::{
    cmd_analyze, cmd_analyze_cached, cmd_analyze_cancellable, cmd_buffers, cmd_dot, cmd_explore,
    cmd_explore_cached, cmd_explore_cancellable, cmd_fsm, cmd_order, cmd_refine, cmd_simulate,
    cmd_simulate_traced, cmd_stalls, cmd_sweep, cmd_sweep_cached, cmd_sweep_cancellable,
    cmd_verify, cmd_verify_cancellable, parse_spec, render_session_report, render_verify_system,
    CliError,
};
pub use server::{Server, ServerConfig};
pub use spec::{ChannelSpec, ParetoPointSpec, ProcessSpec, SpecError, SystemSpec};
