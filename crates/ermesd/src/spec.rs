//! The on-disk system specification format (JSON).
//!
//! A deliberately small, hand-writable schema: processes with latencies
//! (and optional latency/area Pareto frontiers) plus named channels. The
//! `put`/`get` statement orders follow the order in which channels are
//! listed — exactly like the statement order in the SystemC source the
//! paper's flow starts from — and optional explicit `put_order` /
//! `get_order` arrays override them (how the `order` command writes its
//! result back).

use crate::json::{self, JsonError, Value};
use ermes::Design;
use hlsim::{HlsKnobs, MicroArch, ParetoSet};
use std::collections::HashMap;
use std::fmt;
use sysgraph::{ChannelOrdering, SystemGraph};

/// One Pareto point of a process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPointSpec {
    /// Computation latency in cycles.
    pub latency: u64,
    /// Area in abstract units (mm² in the case studies).
    pub area: f64,
}

/// One process of the system.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessSpec {
    /// Unique process name.
    pub name: String,
    /// Current computation latency.
    pub latency: u64,
    /// Optional Pareto frontier; a single `(latency, 0.0)` point is
    /// assumed when absent (omitted from JSON when `None`).
    pub pareto: Option<Vec<ParetoPointSpec>>,
    /// Optional explicit `get` statement order (channel names).
    pub get_order: Option<Vec<String>>,
    /// Optional explicit `put` statement order (channel names).
    pub put_order: Option<Vec<String>>,
}

/// One channel of the system.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSpec {
    /// Unique channel name.
    pub name: String,
    /// Producer process name.
    pub from: String,
    /// Consumer process name.
    pub to: String,
    /// Transfer latency in cycles.
    pub latency: u64,
    /// Pre-loaded items (FIFO depth); 0 = pure rendezvous (the JSON
    /// field defaults to 0 when absent).
    pub initial_tokens: u64,
}

/// A whole system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// The processes, in declaration order.
    pub processes: Vec<ProcessSpec>,
    /// The channels, in declaration order (statement order per process).
    pub channels: Vec<ChannelSpec>,
}

/// Errors turning a spec into a model. Every variant names the offending
/// element, so a service can hand the message straight back to the
/// client as a structured 400.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// Two processes (or two channels) share a name.
    DuplicateName(String),
    /// A channel endpoint or an order entry names an unknown element.
    UnknownName(String),
    /// An explicit order is not a permutation of the process's channels.
    InvalidOrder(String),
    /// A channel connects a process to itself (blocking rendezvous on a
    /// self-channel can never complete).
    SelfChannel(String),
    /// A process declares an explicit, empty Pareto frontier — it would
    /// have no implementation to select.
    EmptyPareto(String),
    /// A Pareto point's area is not a finite, non-negative number.
    InvalidArea(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            SpecError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            SpecError::InvalidOrder(p) => {
                write!(
                    f,
                    "explicit order for `{p}` is not a permutation of its channels"
                )
            }
            SpecError::SelfChannel(c) => {
                write!(f, "channel `{c}` connects a process to itself")
            }
            SpecError::EmptyPareto(p) => {
                write!(f, "process `{p}`: `pareto` must not be an empty array")
            }
            SpecError::InvalidArea(p) => {
                write!(
                    f,
                    "process `{p}`: `area` must be a finite, non-negative number"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

fn field<'a>(value: &'a Value, context: &str, key: &str) -> Result<&'a Value, JsonError> {
    value
        .get(key)
        .ok_or_else(|| JsonError::schema(format!("{context}: missing field `{key}`")))
}

fn string_field(value: &Value, context: &str, key: &str) -> Result<String, JsonError> {
    field(value, context, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| JsonError::schema(format!("{context}: `{key}` must be a string")))
}

fn u64_field(value: &Value, context: &str, key: &str) -> Result<u64, JsonError> {
    field(value, context, key)?.as_u64().ok_or_else(|| {
        JsonError::schema(format!("{context}: `{key}` must be a non-negative integer"))
    })
}

fn name_array(value: &Value, context: &str, key: &str) -> Result<Option<Vec<String>>, JsonError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| JsonError::schema(format!("{context}: `{key}` must be an array")))?;
            items
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        JsonError::schema(format!("{context}: `{key}` entries must be strings"))
                    })
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        }
    }
}

fn check_permutation(
    explicit: &[sysgraph::ChannelId],
    actual: &[sysgraph::ChannelId],
    process: &str,
) -> Result<(), SpecError> {
    let mut want = actual.to_vec();
    let mut got = explicit.to_vec();
    want.sort_unstable();
    got.sort_unstable();
    if want == got {
        Ok(())
    } else {
        Err(SpecError::InvalidOrder(process.to_string()))
    }
}

impl ParetoPointSpec {
    fn from_value(value: &Value, context: &str) -> Result<Self, JsonError> {
        Ok(ParetoPointSpec {
            latency: u64_field(value, context, "latency")?,
            area: field(value, context, "area")?
                .as_f64()
                .ok_or_else(|| JsonError::schema(format!("{context}: `area` must be a number")))?,
        })
    }

    fn to_value(self) -> Value {
        Value::Object(vec![
            ("latency".into(), Value::Number(self.latency as f64)),
            ("area".into(), Value::Number(self.area)),
        ])
    }
}

impl ProcessSpec {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        let name = string_field(value, "process", "name")?;
        let context = format!("process `{name}`");
        let pareto = match value.get("pareto") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let items = v.as_array().ok_or_else(|| {
                    JsonError::schema(format!("{context}: `pareto` must be an array"))
                })?;
                Some(
                    items
                        .iter()
                        .map(|p| ParetoPointSpec::from_value(p, &context))
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
        };
        Ok(ProcessSpec {
            latency: u64_field(value, &context, "latency")?,
            pareto,
            get_order: name_array(value, &context, "get_order")?,
            put_order: name_array(value, &context, "put_order")?,
            name,
        })
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".into(), Value::String(self.name.clone())),
            ("latency".into(), Value::Number(self.latency as f64)),
        ];
        if let Some(points) = &self.pareto {
            fields.push((
                "pareto".into(),
                Value::Array(points.iter().map(|p| p.to_value()).collect()),
            ));
        }
        let names =
            |list: &[String]| Value::Array(list.iter().map(|n| Value::String(n.clone())).collect());
        if let Some(order) = &self.get_order {
            fields.push(("get_order".into(), names(order)));
        }
        if let Some(order) = &self.put_order {
            fields.push(("put_order".into(), names(order)));
        }
        Value::Object(fields)
    }
}

impl ChannelSpec {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        let name = string_field(value, "channel", "name")?;
        let context = format!("channel `{name}`");
        Ok(ChannelSpec {
            from: string_field(value, &context, "from")?,
            to: string_field(value, &context, "to")?,
            latency: u64_field(value, &context, "latency")?,
            initial_tokens: match value.get("initial_tokens") {
                None | Some(Value::Null) => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    JsonError::schema(format!(
                        "{context}: `initial_tokens` must be a non-negative integer"
                    ))
                })?,
            },
            name,
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.name.clone())),
            ("from".into(), Value::String(self.from.clone())),
            ("to".into(), Value::String(self.to.clone())),
            ("latency".into(), Value::Number(self.latency as f64)),
            (
                "initial_tokens".into(),
                Value::Number(self.initial_tokens as f64),
            ),
        ])
    }
}

impl SystemSpec {
    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or schema violations.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let value = json::parse(text)?;
        let processes = field(&value, "spec", "processes")?
            .as_array()
            .ok_or_else(|| JsonError::schema("spec: `processes` must be an array"))?
            .iter()
            .map(ProcessSpec::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let channels = field(&value, "spec", "channels")?
            .as_array()
            .ok_or_else(|| JsonError::schema("spec: `channels` must be an array"))?
            .iter()
            .map(ChannelSpec::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SystemSpec {
            processes,
            channels,
        })
    }

    /// Serializes the spec as pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        Value::Object(vec![
            (
                "processes".into(),
                Value::Array(self.processes.iter().map(ProcessSpec::to_value).collect()),
            ),
            (
                "channels".into(),
                Value::Array(self.channels.iter().map(ChannelSpec::to_value).collect()),
            ),
        ])
        .to_string_pretty()
    }
    /// Builds the system graph (and applies any explicit orders).
    ///
    /// # Errors
    ///
    /// [`SpecError`] on duplicate/unknown names or invalid orders.
    pub fn to_system(&self) -> Result<SystemGraph, SpecError> {
        let mut sys = SystemGraph::new();
        let mut procs = HashMap::new();
        for p in &self.processes {
            if procs.contains_key(p.name.as_str()) {
                return Err(SpecError::DuplicateName(p.name.clone()));
            }
            procs.insert(p.name.as_str(), sys.add_process(&p.name, p.latency));
        }
        let mut chans = HashMap::new();
        for c in &self.channels {
            if chans.contains_key(c.name.as_str()) {
                return Err(SpecError::DuplicateName(c.name.clone()));
            }
            let from = *procs
                .get(c.from.as_str())
                .ok_or_else(|| SpecError::UnknownName(c.from.clone()))?;
            let to = *procs
                .get(c.to.as_str())
                .ok_or_else(|| SpecError::UnknownName(c.to.clone()))?;
            if from == to {
                return Err(SpecError::SelfChannel(c.name.clone()));
            }
            let id = sys
                .add_channel_with_tokens(&c.name, from, to, c.latency, c.initial_tokens)
                .map_err(|_| SpecError::UnknownName(c.name.clone()))?;
            chans.insert(c.name.as_str(), id);
        }
        // Explicit statement orders: resolve names, check each list is a
        // permutation of the process's actual channels (so the error can
        // name the process), then apply.
        let mut ordering = ChannelOrdering::of(&sys);
        for p in &self.processes {
            let pid = procs[p.name.as_str()];
            if let Some(order) = &p.get_order {
                let ids = order
                    .iter()
                    .map(|n| {
                        chans
                            .get(n.as_str())
                            .copied()
                            .ok_or_else(|| SpecError::UnknownName(n.clone()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                check_permutation(&ids, sys.get_order(pid), &p.name)?;
                ordering.set_gets(pid, ids);
            }
            if let Some(order) = &p.put_order {
                let ids = order
                    .iter()
                    .map(|n| {
                        chans
                            .get(n.as_str())
                            .copied()
                            .ok_or_else(|| SpecError::UnknownName(n.clone()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                check_permutation(&ids, sys.put_order(pid), &p.name)?;
                ordering.set_puts(pid, ids);
            }
        }
        ordering
            .apply_to(&mut sys)
            .map_err(|_| SpecError::InvalidOrder("explicit order".into()))?;
        Ok(sys)
    }

    /// Builds a design: processes without an explicit frontier get a
    /// single zero-area point at their current latency.
    ///
    /// # Errors
    ///
    /// [`SpecError`] as for [`SystemSpec::to_system`].
    pub fn to_design(&self) -> Result<Design, SpecError> {
        let sys = self.to_system()?;
        for p in &self.processes {
            if let Some(points) = &p.pareto {
                if points.is_empty() {
                    return Err(SpecError::EmptyPareto(p.name.clone()));
                }
                if points
                    .iter()
                    .any(|pt| !pt.area.is_finite() || pt.area < 0.0)
                {
                    return Err(SpecError::InvalidArea(p.name.clone()));
                }
            }
        }
        let pareto: Vec<ParetoSet> = self
            .processes
            .iter()
            .map(|p| {
                let points = p.pareto.clone().unwrap_or_else(|| {
                    vec![ParetoPointSpec {
                        latency: p.latency,
                        area: 0.0,
                    }]
                });
                ParetoSet::from_candidates(
                    points
                        .into_iter()
                        .map(|pt| MicroArch {
                            knobs: HlsKnobs::baseline(),
                            latency: pt.latency,
                            area: pt.area,
                        })
                        .collect(),
                )
            })
            .collect();
        Design::new(sys, pareto).map_err(|_| SpecError::InvalidOrder("pareto".into()))
    }

    /// Captures a [`SystemGraph`] as a spec, recording the current
    /// statement orders explicitly. Processes get no Pareto frontier
    /// (a single implied point at their current latency).
    #[must_use]
    pub fn from_system(system: &SystemGraph) -> SystemSpec {
        let processes = (0..system.process_count())
            .map(|i| {
                let pid = sysgraph::ProcessId::from_index(i);
                let channel_names = |ids: &[sysgraph::ChannelId]| {
                    ids.iter()
                        .map(|&c| system.channel(c).name().to_string())
                        .collect::<Vec<_>>()
                };
                ProcessSpec {
                    name: system.process(pid).name().to_string(),
                    latency: system.process(pid).latency(),
                    pareto: None,
                    get_order: Some(channel_names(system.get_order(pid))),
                    put_order: Some(channel_names(system.put_order(pid))),
                }
            })
            .collect();
        let channels = (0..system.channel_count())
            .map(|i| {
                let c = system.channel(sysgraph::ChannelId::from_index(i));
                ChannelSpec {
                    name: c.name().to_string(),
                    from: system.process(c.from()).name().to_string(),
                    to: system.process(c.to()).name().to_string(),
                    latency: c.latency(),
                    initial_tokens: c.initial_tokens(),
                }
            })
            .collect();
        SystemSpec {
            processes,
            channels,
        }
    }

    /// Captures a [`Design`] as a spec, including each process's Pareto
    /// frontier (so selection state survives the round trip).
    #[must_use]
    pub fn from_design(design: &Design) -> SystemSpec {
        let mut spec = SystemSpec::from_system(design.system());
        for (i, p) in spec.processes.iter_mut().enumerate() {
            let pid = sysgraph::ProcessId::from_index(i);
            p.pareto = Some(
                design
                    .pareto(pid)
                    .iter()
                    .map(|m| ParetoPointSpec {
                        latency: m.latency,
                        area: m.area,
                    })
                    .collect(),
            );
        }
        spec
    }

    /// Captures a system (with its current statement orders) back into a
    /// spec, preserving this spec's Pareto annotations.
    #[must_use]
    pub fn with_system_state(&self, system: &SystemGraph) -> SystemSpec {
        let mut out = self.clone();
        for (i, p) in out.processes.iter_mut().enumerate() {
            let pid = sysgraph::ProcessId::from_index(i);
            p.latency = system.process(pid).latency();
            p.get_order = Some(
                system
                    .get_order(pid)
                    .iter()
                    .map(|&c| system.channel(c).name().to_string())
                    .collect(),
            );
            p.put_order = Some(
                system
                    .put_order(pid)
                    .iter()
                    .map(|&c| system.channel(c).name().to_string())
                    .collect(),
            );
        }
        for (i, c) in out.channels.iter_mut().enumerate() {
            let cid = sysgraph::ChannelId::from_index(i);
            c.initial_tokens = system.channel(cid).initial_tokens();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SystemSpec {
        SystemSpec::from_json(
            r#"{
                "processes": [
                    {"name": "src", "latency": 1},
                    {"name": "p", "latency": 5,
                     "pareto": [{"latency": 3, "area": 2.0}, {"latency": 5, "area": 1.0}]},
                    {"name": "snk", "latency": 1}
                ],
                "channels": [
                    {"name": "in", "from": "src", "to": "p", "latency": 2},
                    {"name": "out", "from": "p", "to": "snk", "latency": 2}
                ]
            }"#,
        )
        .expect("valid json")
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = sample();
        let text = spec.to_json_pretty();
        let back = SystemSpec::from_json(&text).expect("parses");
        assert_eq!(spec, back);
    }

    #[test]
    fn schema_violations_are_reported() {
        assert!(SystemSpec::from_json(r#"{"processes": []}"#).is_err());
        assert!(
            SystemSpec::from_json(r#"{"processes": [{"name": "p"}], "channels": []}"#).is_err()
        );
        assert!(SystemSpec::from_json(
            r#"{"processes": [{"name": "p", "latency": -1}], "channels": []}"#
        )
        .is_err());
    }

    #[test]
    fn to_system_builds_the_graph() {
        let sys = sample().to_system().expect("valid spec");
        assert_eq!(sys.process_count(), 3);
        assert_eq!(sys.channel_count(), 2);
        let verdict = tmg::analyze(sysgraph::lower_to_tmg(&sys).tmg());
        assert_eq!(verdict.cycle_time(), Some(tmg::Ratio::new(9, 1)));
    }

    #[test]
    fn to_design_uses_frontiers() {
        let design = sample().to_design().expect("valid spec");
        let p = sysgraph::ProcessId::from_index(1);
        assert_eq!(design.pareto(p).len(), 2);
        assert_eq!(design.latency(p), 5, "snaps to the declared latency");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut spec = sample();
        spec.processes[2].name = "src".into();
        assert!(matches!(spec.to_system(), Err(SpecError::DuplicateName(_))));
    }

    #[test]
    fn unknown_endpoint_is_rejected() {
        let mut spec = sample();
        spec.channels[0].from = "ghost".into();
        assert!(matches!(spec.to_system(), Err(SpecError::UnknownName(_))));
    }

    #[test]
    fn explicit_orders_are_applied() {
        let mut spec = sample();
        // Add a second output to src so there is an order to speak of.
        spec.channels.push(ChannelSpec {
            name: "in2".into(),
            from: "src".into(),
            to: "snk".into(),
            latency: 1,
            initial_tokens: 0,
        });
        spec.processes[0].put_order = Some(vec!["in2".into(), "in".into()]);
        let sys = spec.to_system().expect("valid");
        let src = sysgraph::ProcessId::from_index(0);
        let names: Vec<&str> = sys
            .put_order(src)
            .iter()
            .map(|&c| sys.channel(c).name())
            .collect();
        assert_eq!(names, vec!["in2", "in"]);
    }

    #[test]
    fn self_channels_are_rejected() {
        let mut spec = sample();
        spec.channels[0].to = "src".into();
        assert_eq!(spec.to_system(), Err(SpecError::SelfChannel("in".into())));
    }

    #[test]
    fn empty_pareto_is_rejected() {
        let mut spec = sample();
        spec.processes[1].pareto = Some(Vec::new());
        assert_eq!(
            spec.to_design().err(),
            Some(SpecError::EmptyPareto("p".into()))
        );
    }

    #[test]
    fn non_finite_and_negative_areas_are_rejected() {
        let mut spec = sample();
        spec.processes[1].pareto = Some(vec![ParetoPointSpec {
            latency: 3,
            area: f64::INFINITY,
        }]);
        assert_eq!(
            spec.to_design().err(),
            Some(SpecError::InvalidArea("p".into()))
        );
        spec.processes[1].pareto = Some(vec![ParetoPointSpec {
            latency: 3,
            area: -1.0,
        }]);
        assert_eq!(
            spec.to_design().err(),
            Some(SpecError::InvalidArea("p".into()))
        );
        // `1e999` overflows to +inf while parsing; it must come back as a
        // structured error, not a panic deep in the sweep.
        let mut inf = sample();
        inf.processes[1].pareto = Some(vec![ParetoPointSpec {
            latency: 3,
            area: "1e999".parse().expect("parses to inf"),
        }]);
        assert!(inf.to_design().is_err());
    }

    #[test]
    fn bad_explicit_order_names_the_process() {
        let mut spec = sample();
        // Duplicate entry: right length, not a permutation.
        spec.processes[1].get_order = Some(vec!["in".into(), "in".into()]);
        assert_eq!(spec.to_system(), Err(SpecError::InvalidOrder("p".into())));
    }

    #[test]
    fn from_design_roundtrips_frontiers_and_orders() {
        let spec = sample();
        let design = spec.to_design().expect("valid");
        let captured = SystemSpec::from_design(&design);
        assert_eq!(captured.processes.len(), 3);
        assert_eq!(captured.processes[1].pareto.as_ref().map(Vec::len), Some(2));
        let rebuilt = captured.to_design().expect("round-trips");
        assert_eq!(
            rebuilt.system().process_count(),
            design.system().process_count()
        );
        assert_eq!(captured, SystemSpec::from_design(&rebuilt));
    }

    #[test]
    fn state_capture_records_orders() {
        let spec = sample();
        let sys = spec.to_system().expect("valid");
        let captured = spec.with_system_state(&sys);
        assert_eq!(
            captured.processes[1].get_order,
            Some(vec!["in".to_string()])
        );
    }
}
