//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The daemon needs a deliberately small slice of the protocol: request
//! line + headers + `Content-Length` bodies, keep-alive, and plain-text
//! responses. Chunked transfer encoding, multipart, compression, and
//! TLS are out of scope — a reverse proxy provides those in production,
//! exactly as it would for any internal analysis backend. Implemented on
//! `std::io` only, matching the workspace's vendoring philosophy.

use std::io::{BufRead, Read, Write};

/// Hard cap on the request line + headers (a spec body has its own,
/// separately configured cap).
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded query parameters, in declaration order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be produced from the connection.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// A protocol violation; the connection must be answered with the
    /// given status and then closed.
    Malformed {
        /// HTTP status to respond with (400, 413, or 501).
        status: u16,
        /// Human-readable reason, sent as the body.
        reason: String,
    },
    /// An I/O failure (timeout, reset); no response is possible.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn malformed(status: u16, reason: impl Into<String>) -> ReadError {
    ReadError::Malformed {
        status,
        reason: reason.into(),
    }
}

/// Reads one request from `reader`.
///
/// `max_body` bounds the `Content-Length` the server is willing to
/// buffer; larger requests are rejected with a 413-classed error before
/// any body byte is read.
///
/// # Errors
///
/// [`ReadError::Closed`] on clean EOF before the first byte,
/// [`ReadError::Malformed`] on protocol violations, [`ReadError::Io`]
/// when the underlying stream fails.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, ReadError> {
    let mut header_bytes = 0usize;
    let request_line = match read_line(reader, &mut header_bytes)? {
        None => return Err(ReadError::Closed),
        Some(line) if line.is_empty() => return Err(malformed(400, "empty request line")),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(malformed(400, "malformed request line"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(malformed(400, "malformed request line"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut header_bytes)?
            .ok_or_else(|| malformed(400, "connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed(400, format!("malformed header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // Bodies are framed by Content-Length only. A request using a
    // transfer encoding (e.g. `chunked`) would be parsed as body-less and
    // its chunk data then misread as the next pipelined request on the
    // keep-alive connection — so reject it outright, before any body byte
    // is consumed. `identity` is the no-op encoding and equivalent to the
    // header's absence.
    if let Some((_, te)) = headers.iter().find(|(k, _)| k == "transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(malformed(
                501,
                format!("transfer-encoding `{te}` is not supported; use content-length framing"),
            ));
        }
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| malformed(400, format!("invalid content-length `{v}`")))?,
    };
    if content_length > max_body {
        return Err(malformed(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let (path, query) = match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => (path.to_string(), parse_query(qs)),
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// Reads one CRLF- (or bare-LF-) terminated line, enforcing the header
/// budget. `None` = clean EOF before any byte.
fn read_line<R: BufRead>(
    reader: &mut R,
    header_bytes: &mut usize,
) -> Result<Option<String>, ReadError> {
    let mut line = Vec::new();
    let budget = MAX_HEADER_BYTES - (*header_bytes).min(MAX_HEADER_BYTES);
    let read = reader
        .by_ref()
        .take(budget as u64 + 1)
        .read_until(b'\n', &mut line)?;
    if read == 0 {
        return Ok(None);
    }
    if read > budget {
        return Err(malformed(413, "request headers too large"));
    }
    *header_bytes += read;
    while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| malformed(400, "non-UTF-8 request header"))
}

/// Splits `a=1&b=2` into pairs, percent-decoding both sides (`+` as
/// space, `%XX` as the byte — enough for the numeric/CSV parameters the
/// API takes).
fn parse_query(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, 404, 413, 422, 429, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value), e.g. `Retry-After`.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// The standard reason phrase for the status code.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Content Too Large",
            422 => "Unprocessable Content",
            429 => "Too Many Requests",
            // nginx's convention for "client hung up before the response
            // was ready"; the body can only ever land in a packet capture,
            // but the status keeps the request log truthful.
            499 => "Client Closed Request",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (peer gone); the caller drops the
    /// connection.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        if parx::faultpoint::hit("http.write").fired() {
            // Simulate a dying peer / full socket buffer: emit a prefix of
            // the head and fail. The truncation point is before the blank
            // line, so the client can never mistake the fragment for a
            // complete response — a detectable failure, not corruption.
            let cut = head.len() / 2;
            writer.write_all(&head.as_bytes()[..cut])?;
            let _ = writer.flush();
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "faultpoint `http.write`: injected short write",
            ));
        }
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// A parsed HTTP response — the client side of the protocol, used by
/// the cluster coordinator to talk to worker ermesd instances. Same
/// deliberately small slice as [`read_request`]: status line, headers,
/// `Content-Length` body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn invalid(reason: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, reason.into())
}

/// Reads one response from `reader`. `max_body` bounds the body the
/// client is willing to buffer (a worker's sweep-point lines are tiny;
/// a relayed explore report is bounded by the server's own cap).
///
/// # Errors
///
/// `InvalidData` on protocol violations (including a missing or
/// oversized `Content-Length`), `UnexpectedEof` when the peer closes
/// mid-response — the signal the coordinator's retry logic treats as a
/// transient worker failure.
pub fn read_response<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> std::io::Result<ClientResponse> {
    let mut header_bytes = 0usize;
    let status_line = match read_line(reader, &mut header_bytes) {
        Ok(Some(line)) => line,
        Ok(None) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ))
        }
        Err(ReadError::Io(e)) => return Err(e),
        Err(ReadError::Malformed { reason, .. }) => return Err(invalid(reason)),
        Err(ReadError::Closed) => unreachable!("read_line reports EOF as None"),
    };
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(status), _) = (parts.next(), parts.next(), parts.next()) else {
        return Err(invalid(format!("malformed status line `{status_line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unexpected protocol `{version}`")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| invalid(format!("non-numeric status `{status}`")))?;
    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut header_bytes) {
            Ok(Some(line)) => line,
            Ok(None) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ))
            }
            Err(ReadError::Io(e)) => return Err(e),
            Err(ReadError::Malformed { reason, .. }) => return Err(invalid(reason)),
            Err(ReadError::Closed) => unreachable!("read_line reports EOF as None"),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(invalid(format!("malformed header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| invalid(format!("invalid content-length `{v}`")))?,
    };
    if content_length > max_body {
        return Err(invalid(format!(
            "response body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Serializes one client request to `writer`: the coordinator's worker
/// link always closes the connection after one exchange (subjobs are
/// coarse, and per-request connections make retry/hedge bookkeeping
/// trivially correct).
///
/// # Errors
///
/// Propagates I/O failures; the caller treats them as a transient
/// worker failure and retries on the next ring replica.
pub fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    target: &str,
    headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(text.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /explore?target=2000&jobs=2 HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("valid request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/explore");
        assert_eq!(req.query_param("target"), Some("2000"));
        assert_eq!(req.query_param("jobs"), Some("2"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /analyze HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").expect("valid");
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("content-length"), Some("5"));
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("valid");
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_reports_closed() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn malformed_request_line_is_rejected() {
        for bad in ["GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / SPDY/3\r\n\r\n"] {
            assert!(
                matches!(parse(bad), Err(ReadError::Malformed { status: 400, .. })),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn oversized_body_is_rejected_with_413() {
        let text = "POST /analyze HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        assert!(matches!(
            parse(text),
            Err(ReadError::Malformed { status: 413, .. })
        ));
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let mut text = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            text.push_str(&format!("x-h{i}: {}\r\n", "v".repeat(20)));
        }
        text.push_str("\r\n");
        assert!(matches!(
            parse(&text),
            Err(ReadError::Malformed { status: 413, .. })
        ));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected_with_501() {
        // Without the check, this parsed as a body-less request and the
        // chunk data (`5\r\nhello\r\n0\r\n\r\n`) was then misread as the
        // next pipelined request on the keep-alive connection.
        let text = "POST /analyze HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\n0\r\n\r\n";
        let mut reader = BufReader::new(text.as_bytes());
        let err = read_request(&mut reader, 1024).expect_err("chunked must be rejected");
        match err {
            ReadError::Malformed { status, reason } => {
                assert_eq!(status, 501);
                assert!(reason.contains("chunked"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn compressed_transfer_encoding_is_rejected_with_501() {
        let text =
            "POST /analyze HTTP/1.1\r\nTransfer-Encoding: gzip\r\nContent-Length: 2\r\n\r\nok";
        assert!(matches!(
            parse(text),
            Err(ReadError::Malformed { status: 501, .. })
        ));
    }

    #[test]
    fn identity_transfer_encoding_is_equivalent_to_absent() {
        let text =
            "POST /analyze HTTP/1.1\r\nTransfer-Encoding: identity\r\nContent-Length: 2\r\n\r\nok";
        let req = parse(text).expect("identity encoding is a no-op");
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn query_decoding_handles_percent_and_plus() {
        let req = parse("GET /x?a=1%2C2%2C3&b=hello+world&flag HTTP/1.1\r\n\r\n").expect("valid");
        assert_eq!(req.query_param("a"), Some("1,2,3"));
        assert_eq!(req.query_param("b"), Some("hello world"));
        assert_eq!(req.query_param("flag"), Some(""));
    }

    #[test]
    fn response_serializes_with_length() {
        let mut out = Vec::new();
        Response::text(200, "body")
            .write_to(&mut out, true)
            .expect("writes");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nbody"));
    }

    #[test]
    fn client_response_round_trips_through_the_server_writer() {
        let mut wire = Vec::new();
        let mut response = Response::text(429, "busy\n");
        response
            .extra_headers
            .push(("retry-after", "3".to_string()));
        response.write_to(&mut wire, false).expect("writes");
        let parsed =
            read_response(&mut BufReader::new(wire.as_slice()), 1024).expect("parses back");
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.body, b"busy\n");
        assert_eq!(parsed.header("retry-after"), Some("3"));
        assert_eq!(parsed.header("connection"), Some("close"));
    }

    #[test]
    fn truncated_response_reports_unexpected_eof() {
        let mut wire = Vec::new();
        Response::text(200, "0123456789")
            .write_to(&mut wire, false)
            .expect("writes");
        for cut in 0..wire.len() {
            let err = read_response(&mut BufReader::new(&wire[..cut]), 1024)
                .expect_err("must not parse a prefix");
            // A cut at a line boundary reads as EOF; mid-line it reads
            // as a malformed line. Either way the coordinator sees an
            // error (a retryable one), never a truncated-but-Ok body.
            assert!(
                matches!(
                    err.kind(),
                    std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::InvalidData
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_response_body_is_rejected() {
        let mut wire = Vec::new();
        Response::text(200, vec![b'x'; 64])
            .write_to(&mut wire, false)
            .expect("writes");
        let err = read_response(&mut BufReader::new(wire.as_slice()), 16).expect_err("too big");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn client_request_round_trips_through_the_server_parser() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            "POST",
            "/shard/sweeppoint?target=1200",
            &[("x-ermes-trace", "7/9".to_string())],
            b"{\"spec\":1}",
        )
        .expect("writes");
        let req =
            read_request(&mut BufReader::new(wire.as_slice()), 1024).expect("server parses it");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/shard/sweeppoint");
        assert_eq!(req.query_param("target"), Some("1200"));
        assert_eq!(req.header("x-ermes-trace"), Some("7/9"));
        assert_eq!(req.body, b"{\"spec\":1}");
        assert!(!req.keep_alive(), "worker link is one-shot");
    }

    #[test]
    fn two_requests_on_one_connection() {
        let text = "GET /healthz HTTP/1.1\r\n\r\nPOST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut reader = BufReader::new(text.as_bytes());
        let first = read_request(&mut reader, 1024).expect("first");
        assert_eq!(first.path, "/healthz");
        let second = read_request(&mut reader, 1024).expect("second");
        assert_eq!(second.body, b"ok");
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(ReadError::Closed)
        ));
    }
}
