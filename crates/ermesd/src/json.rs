//! A small, dependency-free JSON layer for the spec format.
//!
//! The build container has no registry access, so the CLI parses and
//! prints its spec files with this hand-rolled module instead of
//! `serde_json`. It implements the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null) with line/column error
//! reporting; numbers are stored as `f64`, which is exact for every
//! latency/area magnitude the spec format carries.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// layout, `serde_json::to_string_pretty` style.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or schema error, with 1-based position for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    line: usize,
    column: usize,
}

impl JsonError {
    /// A schema-level error (no source position).
    #[must_use]
    pub fn schema(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            line: 0,
            column: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(
                f,
                "{} at line {} column {}",
                self.message, self.line, self.column
            )
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            message: message.into(),
            line,
            column,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the spec
                            // format; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or
                    // backslash in one step. Both stop bytes are ASCII,
                    // which never occurs inside a multi-byte UTF-8
                    // sequence, so the run boundaries are char
                    // boundaries; validating per character instead would
                    // make parsing quadratic in the document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// [`JsonError`] with line/column on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null}"#).expect("valid");
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn pretty_print_roundtrips() {
        let v = parse(
            r#"{"name":"p","latency":5,"pareto":[{"latency":3,"area":2.0}],"empty":[],"none":{}}"#,
        )
        .expect("valid");
        let text = v.to_string_pretty();
        assert_eq!(parse(&text).expect("reparses"), v);
        assert!(text.contains("\"latency\": 5"));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("{\n  \"a\": }").expect_err("malformed");
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        let v = Value::Number(5280.0);
        assert_eq!(v.to_string_pretty(), "5280");
        assert_eq!(v.as_u64(), Some(5280));
        assert_eq!(Value::Number(0.25).to_string_pretty(), "0.25");
        assert_eq!(Value::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let original = Value::String("π \"q\" \\ tab\t".to_string());
        let text = original.to_string_pretty();
        assert_eq!(parse(&text).expect("valid"), original);
    }
}
