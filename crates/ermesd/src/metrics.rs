//! Service observability: counters, latency histogram, and the
//! Prometheus text-format renderer behind `GET /metrics`.
//!
//! The registry is plain `std::sync` — per-(endpoint, status) request
//! counters behind a mutex (scrape-ordered deterministically), a
//! fixed-bucket latency histogram on atomics, and gauges sampled at
//! scrape time (queue depth, cache sizes). Cache hit/miss/eviction
//! counters are not duplicated here: they live in the per-design
//! [`ermes::EngineCache`]s and are aggregated into the scrape by the
//! server, so `/metrics` and the engine can never disagree.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Upper bounds (seconds) of the latency histogram buckets; a `+Inf`
/// bucket is implicit. Spans 100 µs (cache-hit analyze on a small spec)
/// to 10 s (cold multi-target sweep on a large one). Shared with the
/// engine's per-phase histograms (`trace`) so request latency and phase
/// time line up on one dashboard axis.
pub const LATENCY_BUCKETS: [f64; 14] = trace::LATENCY_BUCKETS;

/// Shared metrics state of one server.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `(endpoint, status)` → count. BTreeMap keeps the scrape output
    /// deterministically ordered.
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// Cumulative bucket counts (`le` = [`LATENCY_BUCKETS`] + `+Inf`).
    latency_buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    /// Sum of observed latencies, in microseconds.
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
    /// Per-endpoint latency histograms (same buckets as the aggregate,
    /// which is kept for dashboard compatibility).
    endpoint_latency: Mutex<BTreeMap<&'static str, EndpointHistogram>>,
    /// Requests rejected because the admission queue was full.
    shed_queue_full: AtomicU64,
    /// Requests rejected because their deadline expired while queued.
    shed_deadline: AtomicU64,
    /// Jobs cancelled mid-execution because their deadline expired.
    cancelled_deadline: AtomicU64,
    /// Jobs cancelled mid-execution because the client disconnected.
    cancelled_disconnect: AtomicU64,
    /// Jobs that panicked on their worker (caught; worker respawned).
    jobs_panicked: AtomicU64,
}

/// Counters of the cluster coordinator's dispatch layer, owned by the
/// `Cluster` and sampled into the scrape alongside the request
/// counters. All monotone, all atomics — dispatch threads bump them
/// without a lock.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    subjobs: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    degraded: AtomicU64,
    probe_failures: AtomicU64,
}

impl ClusterMetrics {
    /// One subjob dispatch attempt sent to a worker.
    pub fn record_subjob(&self) {
        self.subjobs.fetch_add(1, Ordering::Relaxed);
    }

    /// One retry (a dispatch attempt after the first).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// One hedged duplicate sent to a second replica.
    pub fn record_hedge(&self) {
        self.hedges.fetch_add(1, Ordering::Relaxed);
    }

    /// One job the coordinator executed locally because the cluster
    /// could not (all workers down, or attempts exhausted).
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// One failed health probe.
    pub fn record_probe_failure(&self) {
        self.probe_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as `(name, help, value)` rows for the scrape.
    #[must_use]
    pub fn sampled(&self) -> Vec<(&'static str, &'static str, u64)> {
        vec![
            (
                "ermes_cluster_subjobs_total",
                "Subjob dispatch attempts sent to workers",
                self.subjobs.load(Ordering::Relaxed),
            ),
            (
                "ermes_cluster_retries_total",
                "Subjob dispatch attempts after the first",
                self.retries.load(Ordering::Relaxed),
            ),
            (
                "ermes_cluster_hedges_total",
                "Hedged duplicate dispatches to a second replica",
                self.hedges.load(Ordering::Relaxed),
            ),
            (
                "ermes_cluster_degraded_total",
                "Jobs served locally because the cluster could not",
                self.degraded.load(Ordering::Relaxed),
            ),
            (
                "ermes_cluster_probe_failures_total",
                "Failed worker health probes",
                self.probe_failures.load(Ordering::Relaxed),
            ),
        ]
    }

    /// Current degraded-jobs count (for `/healthz`).
    #[must_use]
    pub fn degraded_total(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }
}

/// Malformed `x-ermes-trace` headers seen by this process. Global (not
/// per-`Metrics`) because the parse site — `cluster::parse_trace_header`
/// — runs on connection threads with no `Metrics` handle in reach, and
/// a process only ever has one answer to "how often are peers sending
/// me garbage trace headers".
static TRACE_HEADER_INVALID: AtomicU64 = AtomicU64::new(0);

/// Counts one present-but-unparsable `x-ermes-trace` header.
pub fn record_trace_header_invalid() {
    TRACE_HEADER_INVALID.fetch_add(1, Ordering::Relaxed);
}

/// Malformed `x-ermes-trace` headers seen so far (monotone).
#[must_use]
pub fn trace_header_invalid_total() -> u64 {
    TRACE_HEADER_INVALID.load(Ordering::Relaxed)
}

/// Rewrites a worker's Prometheus exposition for federation into the
/// coordinator's scrape: every sample line gains `node="<addr>"` as its
/// first label; comment (`# HELP`/`# TYPE`) and blank lines are dropped
/// (the coordinator's own exposition already carries the metadata for
/// shared metric names, and repeating it per node would say nothing
/// new). Metric names never contain `{`, so the first `{` on a line is
/// the label-set opener.
#[must_use]
pub fn federate_exposition(node: &str, exposition: &str) -> String {
    let mut out = String::with_capacity(exposition.len() + 64);
    let _ = writeln!(out, "# federated from worker {node}");
    for line in exposition.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(brace) = line.find('{') {
            let (name, rest) = line.split_at(brace);
            // rest = `{existing_labels} value`
            let _ = writeln!(out, "{name}{{node=\"{node}\",{}", &rest[1..]);
        } else if let Some((name, value)) = line.split_once(' ') {
            let _ = writeln!(out, "{name}{{node=\"{node}\"}} {value}");
        }
        // A line with neither labels nor a value separator is not a
        // sample; drop it rather than forward garbage.
    }
    out
}

/// Cumulative bucket counts plus sum/count for one endpoint.
#[derive(Debug, Default, Clone)]
struct EndpointHistogram {
    buckets: [u64; LATENCY_BUCKETS.len() + 1],
    sum_micros: u64,
    count: u64,
}

impl Metrics {
    /// A zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished request.
    pub fn record_request(&self, endpoint: &'static str, status: u16) {
        *self
            .requests
            .lock()
            .expect("metrics poisoned")
            .entry((endpoint, status))
            .or_insert(0) += 1;
    }

    /// Records the service latency (arrival to response ready) of one
    /// analysis request, both in the aggregate histogram and under the
    /// request's endpoint label.
    pub fn observe_latency(&self, endpoint: &'static str, elapsed: Duration) {
        let seconds = elapsed.as_secs_f64();
        let micros = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        for (i, &bound) in LATENCY_BUCKETS.iter().enumerate() {
            if seconds <= bound {
                self.latency_buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.latency_buckets[LATENCY_BUCKETS.len()].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);

        let mut per_endpoint = self.endpoint_latency.lock().expect("metrics poisoned");
        let h = per_endpoint.entry(endpoint).or_default();
        for (i, &bound) in LATENCY_BUCKETS.iter().enumerate() {
            if seconds <= bound {
                h.buckets[i] += 1;
            }
        }
        h.buckets[LATENCY_BUCKETS.len()] += 1;
        h.sum_micros += micros;
        h.count += 1;
    }

    /// Counts one load-shed rejection (`queue_full` distinguishes a full
    /// queue from an expired deadline).
    pub fn record_shed(&self, queue_full: bool) {
        if queue_full {
            self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shed_deadline.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one job cancelled mid-execution by its expired deadline.
    pub fn record_cancelled_deadline(&self) {
        self.cancelled_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one job cancelled mid-execution by a client disconnect.
    pub fn record_cancelled_disconnect(&self) {
        self.cancelled_disconnect.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one job that panicked on its worker.
    pub fn record_job_panicked(&self) {
        self.jobs_panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests recorded, across endpoints and statuses.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.requests
            .lock()
            .expect("metrics poisoned")
            .values()
            .sum()
    }

    /// Renders the Prometheus text exposition. `gauges` supplies the
    /// point-in-time values sampled by the server at scrape time
    /// (queue depth, cache aggregates, …) and `sampled_counters` the
    /// monotone counters owned elsewhere and read at scrape time (worker
    /// restarts live in the pool), each as `(metric_name, help, value)`.
    #[must_use]
    pub fn render(
        &self,
        gauges: &[(&str, &str, f64)],
        sampled_counters: &[(&str, &str, u64)],
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP ermesd_requests_total Requests served, by endpoint and status.\n\
             # TYPE ermesd_requests_total counter"
        );
        for ((endpoint, status), count) in self.requests.lock().expect("metrics poisoned").iter() {
            let _ = writeln!(
                out,
                "ermesd_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP ermesd_request_seconds Service latency of analysis requests (arrival to response ready).\n\
             # TYPE ermesd_request_seconds histogram"
        );
        for (i, &bound) in LATENCY_BUCKETS.iter().enumerate() {
            let _ = writeln!(
                out,
                "ermesd_request_seconds_bucket{{le=\"{bound}\"}} {}",
                self.latency_buckets[i].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "ermesd_request_seconds_bucket{{le=\"+Inf\"}} {}",
            self.latency_buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "ermesd_request_seconds_sum {}",
            self.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "ermesd_request_seconds_count {}",
            self.latency_count.load(Ordering::Relaxed)
        );
        // The same histogram broken out per endpoint; the unlabelled
        // aggregate above is kept for existing dashboards.
        for (endpoint, h) in self
            .endpoint_latency
            .lock()
            .expect("metrics poisoned")
            .iter()
        {
            for (i, &bound) in LATENCY_BUCKETS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "ermesd_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {}",
                    h.buckets[i]
                );
            }
            let _ = writeln!(
                out,
                "ermesd_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {}",
                h.buckets[LATENCY_BUCKETS.len()]
            );
            let _ = writeln!(
                out,
                "ermesd_request_seconds_sum{{endpoint=\"{endpoint}\"}} {}",
                h.sum_micros as f64 / 1e6
            );
            let _ = writeln!(
                out,
                "ermesd_request_seconds_count{{endpoint=\"{endpoint}\"}} {}",
                h.count
            );
        }
        for (name, help, counter) in [
            (
                "ermesd_shed_queue_full_total",
                "Requests rejected with 429 because the admission queue was full.",
                &self.shed_queue_full,
            ),
            (
                "ermesd_shed_deadline_total",
                "Requests rejected with 429 because their deadline expired while queued.",
                &self.shed_deadline,
            ),
            (
                "ermesd_cancelled_deadline_total",
                "Jobs cancelled mid-execution because their deadline expired.",
                &self.cancelled_deadline,
            ),
            (
                "ermesd_cancelled_disconnect_total",
                "Jobs cancelled mid-execution because the client disconnected.",
                &self.cancelled_disconnect,
            ),
            (
                "ermesd_jobs_panicked_total",
                "Jobs that panicked on their worker (caught; worker respawned).",
                &self.jobs_panicked,
            ),
        ] {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        for (name, help, value) in sampled_counters {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
            );
        }
        for (name, help, value) in gauges {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}"
            );
        }
        out
    }
}

/// Renders the engine's per-phase time histograms
/// (`ermes_phase_seconds{phase=...}`) from the tracing layer's
/// process-wide aggregates. Phases are span names (`howard`, `ilp`,
/// `chanorder`, `cache`, …); buckets are [`LATENCY_BUCKETS`].
#[must_use]
pub fn render_phase_histograms() -> String {
    let phases = trace::phase_snapshot();
    if phases.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP ermes_phase_seconds Engine time per phase (span durations from the tracing layer).\n\
         # TYPE ermes_phase_seconds histogram"
    );
    for p in &phases {
        let mut cumulative = 0u64;
        for (i, &bound) in trace::LATENCY_BUCKETS.iter().enumerate() {
            cumulative += p.buckets[i];
            let _ = writeln!(
                out,
                "ermes_phase_seconds_bucket{{phase=\"{}\",le=\"{bound}\"}} {cumulative}",
                p.phase
            );
        }
        let _ = writeln!(
            out,
            "ermes_phase_seconds_bucket{{phase=\"{}\",le=\"+Inf\"}} {}",
            p.phase, p.count
        );
        let _ = writeln!(
            out,
            "ermes_phase_seconds_sum{{phase=\"{}\"}} {}",
            p.phase, p.sum_seconds
        );
        let _ = writeln!(
            out,
            "ermes_phase_seconds_count{{phase=\"{}\"}} {}",
            p.phase, p.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counters_accumulate_per_endpoint_and_status() {
        let m = Metrics::new();
        m.record_request("analyze", 200);
        m.record_request("analyze", 200);
        m.record_request("analyze", 400);
        m.record_request("explore", 200);
        assert_eq!(m.total_requests(), 4);
        let text = m.render(&[], &[]);
        assert!(
            text.contains("ermesd_requests_total{endpoint=\"analyze\",status=\"200\"} 2"),
            "{text}"
        );
        assert!(text.contains("ermesd_requests_total{endpoint=\"analyze\",status=\"400\"} 1"));
        assert!(text.contains("ermesd_requests_total{endpoint=\"explore\",status=\"200\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_latency("analyze", Duration::from_micros(200)); // ≤ 0.00025 …
        m.observe_latency("analyze", Duration::from_millis(30)); // ≤ 0.05 …
        let text = m.render(&[], &[]);
        assert!(
            text.contains("ermesd_request_seconds_bucket{le=\"0.0001\"} 0"),
            "{text}"
        );
        assert!(text.contains("ermesd_request_seconds_bucket{le=\"0.00025\"} 1"));
        assert!(text.contains("ermesd_request_seconds_bucket{le=\"0.05\"} 2"));
        assert!(text.contains("ermesd_request_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ermesd_request_seconds_count 2"));
    }

    #[test]
    fn per_endpoint_histograms_ride_alongside_the_aggregate() {
        let m = Metrics::new();
        m.observe_latency("sweep", Duration::from_millis(30));
        m.observe_latency("analyze", Duration::from_micros(200));
        let text = m.render(&[], &[]);
        // Aggregate (unlabelled) series is unchanged…
        assert!(
            text.contains("ermesd_request_seconds_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        // …and each endpoint gets its own full histogram.
        assert!(text.contains("ermesd_request_seconds_bucket{endpoint=\"sweep\",le=\"0.05\"} 1"));
        assert!(text.contains("ermesd_request_seconds_bucket{endpoint=\"sweep\",le=\"+Inf\"} 1"));
        assert!(text.contains("ermesd_request_seconds_count{endpoint=\"sweep\"} 1"));
        assert!(
            text.contains("ermesd_request_seconds_bucket{endpoint=\"analyze\",le=\"0.00025\"} 1")
        );
        assert!(text.contains("ermesd_request_seconds_count{endpoint=\"analyze\"} 1"));
    }

    #[test]
    fn shed_counters_split_by_cause() {
        let m = Metrics::new();
        m.record_shed(true);
        m.record_shed(true);
        m.record_shed(false);
        let text = m.render(&[], &[]);
        assert!(text.contains("ermesd_shed_queue_full_total 2"), "{text}");
        assert!(text.contains("ermesd_shed_deadline_total 1"));
    }

    #[test]
    fn gauges_render_with_help_and_type() {
        let m = Metrics::new();
        let text = m.render(
            &[("ermesd_queue_depth", "Jobs waiting.", 3.0)],
            &[(
                "ermes_worker_restarts_total",
                "Workers respawned after a panic.",
                2,
            )],
        );
        assert!(text.contains("# TYPE ermesd_queue_depth gauge"), "{text}");
        assert!(text.contains("ermesd_queue_depth 3"));
        assert!(
            text.contains("# TYPE ermes_worker_restarts_total counter"),
            "{text}"
        );
        assert!(text.contains("ermes_worker_restarts_total 2"));
    }

    #[test]
    fn federation_injects_the_node_label_first_and_drops_comments() {
        let worker = "# HELP ermesd_requests_total Requests served.\n\
                      # TYPE ermesd_requests_total counter\n\
                      ermesd_requests_total{endpoint=\"analyze\",status=\"200\"} 7\n\
                      ermesd_queue_depth 3\n\
                      \n\
                      not-a-sample-line\n";
        let federated = federate_exposition("10.0.0.7:7891", worker);
        assert!(
            federated.starts_with("# federated from worker 10.0.0.7:7891\n"),
            "{federated}"
        );
        assert!(federated.contains(
            "ermesd_requests_total{node=\"10.0.0.7:7891\",endpoint=\"analyze\",status=\"200\"} 7"
        ));
        assert!(federated.contains("ermesd_queue_depth{node=\"10.0.0.7:7891\"} 3"));
        assert!(!federated.contains("# HELP"), "comments dropped");
        assert!(!federated.contains("not-a-sample"), "non-samples dropped");
    }

    #[test]
    fn invalid_trace_header_counter_is_monotone() {
        let before = trace_header_invalid_total();
        record_trace_header_invalid();
        record_trace_header_invalid();
        assert!(trace_header_invalid_total() >= before + 2);
    }

    #[test]
    fn cancellation_and_panic_counters_render() {
        let m = Metrics::new();
        m.record_cancelled_deadline();
        m.record_cancelled_deadline();
        m.record_cancelled_disconnect();
        m.record_job_panicked();
        let text = m.render(&[], &[]);
        assert!(text.contains("ermesd_cancelled_deadline_total 2"), "{text}");
        assert!(text.contains("ermesd_cancelled_disconnect_total 1"));
        assert!(text.contains("ermesd_jobs_panicked_total 1"));
    }
}
