//! Standalone launcher for the ERMES analysis daemon (the CLI's
//! `ermes serve` is the same server behind the same flags).

use ermesd::{Server, ServerConfig};

const USAGE: &str = "\
ermesd — long-running ERMES analysis service

USAGE:
    ermesd [--addr <host:port>] [--workers <n>] [--queue <n>]
           [--cache <n>] [--sessions <n>] [--deadline-ms <n>]
    ermesd --coordinator --workers <host:port,host:port,...> [--addr ...]

    --addr <host:port>   bind address (default 127.0.0.1:7878, :0 = ephemeral)
    --workers <n>        analysis worker threads (0 = all hardware threads)
    --queue <n>          admission-queue bound; beyond it requests shed with 429
    --cache <n>          per-design engine-cache bound (entries per table)
    --sessions <n>       live interactive-session bound (LRU beyond it)
    --deadline-ms <n>    default per-request deadline (0 = none)
    --coordinator        cluster mode: fan /explore and /sweep out to the
                         worker daemons listed in --workers (health-probed,
                         consistent-hash sharded, retried across replicas;
                         responses stay bit-identical to a single node)

Endpoints: POST /analyze, /order, /explore?target=N, /sweep?targets=a,b,c,
/session, /session/{id}/edit, /shutdown; DELETE /session/{id};
GET /healthz, /metrics (federates worker samples under a node label in
coordinator mode), /trace, /trace/slow (tail-sampled flight recorder).

Chaos testing: set ERMES_FAULTPOINTS to a deterministic fault plan, e.g.
    ERMES_FAULTPOINTS='seed=42;worker.job=panic@0.05;http.write=short@0.02'
Named points: worker.job, json.parse, cache.insert, http.write,
cluster.request (the coordinator's worker-client path).
Actions: panic, delay(MS), short, conn.refuse, conn.reset, resp.truncate,
resp.delay(MS); optional @probability and #max-firings.
";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let defaults = ServerConfig::default();
    // In coordinator mode `--workers` names the fleet (host:port list)
    // instead of sizing the local pool; the pool keeps its hardware
    // default so degraded-mode fallbacks still have threads to run on.
    let (workers, cluster) = if args.iter().any(|a| a == "--coordinator") {
        let list = flag(&args, "--workers")
            .ok_or("--coordinator requires --workers <host:port,host:port,...>")?;
        let addrs: Vec<String> = list
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if addrs.is_empty() || addrs.iter().any(|a| !a.contains(':')) {
            return Err(
                "--workers must list host:port worker addresses in coordinator mode".into(),
            );
        }
        (0, Some(ermesd::ClusterConfig::new(addrs)))
    } else {
        (
            parx::parse_jobs("--workers", flag(&args, "--workers").as_deref(), 0)?,
            None,
        )
    };
    let config = ServerConfig {
        addr: flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into()),
        workers,
        cluster,
        queue_capacity: flag(&args, "--queue").map_or(Ok(defaults.queue_capacity), |s| {
            s.parse().map_err(|_| "--queue takes a positive integer")
        })?,
        cache_capacity: flag(&args, "--cache").map_or(Ok(defaults.cache_capacity), |s| {
            s.parse()
                .map_err(|_| "--cache takes a non-negative integer")
        })?,
        session_capacity: flag(&args, "--sessions").map_or(Ok(defaults.session_capacity), |s| {
            s.parse().map_err(|_| "--sessions takes a positive integer")
        })?,
        default_deadline_ms: flag(&args, "--deadline-ms").map_or(
            Ok(defaults.default_deadline_ms),
            |s| {
                s.parse()
                    .map_err(|_| "--deadline-ms takes a non-negative integer")
            },
        )?,
        ..defaults
    };
    let server = Server::start(config)?;
    println!("ermesd listening on http://{}", server.addr());
    server.run()?;
    println!("ermesd drained and stopped");
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
