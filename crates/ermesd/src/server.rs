//! The daemon: admission control, the shared cache, and the HTTP loop.
//!
//! One acceptor thread hands each connection to its own thread (parsing
//! and response writing are cheap; connections are few), and every
//! *analysis* request is executed on a fixed [`parx::Pool`] whose bounded
//! queue is the admission-control knob: when it is full the request is
//! rejected immediately with `429` instead of queueing latent work. A
//! request may carry a `deadline_ms` query parameter; if the deadline has
//! passed by the time a worker picks the job up, the work is skipped and
//! the client gets a `429` as well (the classic load-shedding pair).
//!
//! # Response identity
//!
//! Responses are **bit-identical to the CLI** at any worker count and any
//! cache warmth:
//!
//! - `POST /analyze` = `ermes analyze` stdout;
//! - `POST /order` = `ermes order` stdout (report, then the ordered spec);
//! - `POST /explore` = `ermes explore` stdout *minus the cache-stats
//!   line*, followed by the explored spec (what the CLI writes to
//!   `--out`);
//! - `POST /sweep` = `ermes sweep` stdout *minus the cache-stats line*.
//!
//! The cache-stats line is the one part of CLI output that depends on
//! run history, so it cannot appear in a response served from a shared
//! warm cache; its counters are served, aggregated, at `GET /metrics`.
//!
//! # The shared cache
//!
//! An [`EngineCache`] memoizes per *base design* (topology, channel
//! latencies, Pareto frontiers) — its keys only cover selection and
//! ordering state. The server therefore keeps an LRU of `EngineCache`s
//! keyed by the canonical JSON of the incoming spec: requests for the
//! same system share a warm cache, requests for different systems can
//! never alias. Each engine cache is itself bounded
//! ([`EngineCache::with_capacity`]), so memory is bounded by
//! `design_cache_capacity * cache_capacity` entries regardless of uptime.

use crate::cluster::{
    parse_point_wire, parse_trace_header, render_point_wire, shard_key, Cluster, ClusterConfig,
};
use crate::commands::{
    cmd_analyze_cancellable, cmd_explore_cancellable, cmd_order, cmd_sweep_cancellable,
    cmd_verify_cancellable, render_session_report, render_sweep_front, render_verify_system,
    CliError,
};
use crate::http::{read_request, ClientResponse, ReadError, Request, Response};
use crate::metrics::Metrics;
use crate::session::{apply_edit, parse_edit, SessionStore};
use crate::spec::SystemSpec;
use ermes::{CacheStats, EngineCache};
use parx::{CancelReason, CancelToken};
use std::collections::HashMap;
use std::io::{self, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often the connection thread wakes while its job runs to poll the
/// socket for a client disconnect. Bounds disconnect-detection latency;
/// cancellation latency itself is additionally bounded by the job's
/// innermost polling loop.
const DISCONNECT_POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` = ephemeral port).
    pub addr: String,
    /// Analysis worker threads (`0` = all hardware threads).
    pub workers: usize,
    /// Bound on the admission queue; a full queue sheds with `429`.
    pub queue_capacity: usize,
    /// Per-table bound of each design's [`EngineCache`].
    pub cache_capacity: usize,
    /// How many distinct base designs keep a warm cache (LRU beyond).
    pub design_cache_capacity: usize,
    /// Largest request body (a spec JSON) the server will buffer.
    pub max_body_bytes: usize,
    /// Default per-request deadline in milliseconds (`0` = none); the
    /// `deadline_ms` query parameter overrides it per request.
    pub default_deadline_ms: u64,
    /// How many interactive sessions stay live at once; opening one
    /// beyond the bound evicts the least recently edited session.
    pub session_capacity: usize,
    /// Coordinator mode: when set, `/explore` and `/sweep` are fanned
    /// out to the configured worker daemons (`None` = plain single-node
    /// service). Responses stay bit-identical either way.
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 4096,
            design_cache_capacity: 32,
            max_body_bytes: 4 * 1024 * 1024,
            default_deadline_ms: 0,
            session_capacity: 64,
            cluster: None,
        }
    }
}

/// LRU of per-design engine caches, keyed by canonical spec JSON.
struct CacheLru {
    entries: HashMap<String, (Arc<EngineCache>, u64)>,
    tick: u64,
    capacity: usize,
    engine_capacity: usize,
}

impl CacheLru {
    fn new(capacity: usize, engine_capacity: usize) -> CacheLru {
        CacheLru {
            entries: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
            engine_capacity,
        }
    }

    /// The cache for `key`, created (evicting the least recently used
    /// design if at capacity) when absent.
    fn get(&mut self, key: &str) -> Arc<EngineCache> {
        self.tick += 1;
        if let Some((cache, stamp)) = self.entries.get_mut(key) {
            *stamp = self.tick;
            return Arc::clone(cache);
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        let cache = Arc::new(EngineCache::with_capacity(self.engine_capacity));
        self.entries
            .insert(key.to_string(), (Arc::clone(&cache), self.tick));
        cache
    }

    /// Aggregated hit/miss/eviction counters and total stored entries
    /// across every live design cache.
    fn aggregate(&self) -> (CacheStats, usize) {
        let mut stats = CacheStats::default();
        let mut entries = 0;
        for (cache, _) in self.entries.values() {
            stats = stats.merged(&cache.stats());
            let (a, o) = cache.entry_counts();
            entries += a + o;
        }
        (stats, entries)
    }

    /// Per-base-design `(fingerprint, stored entries, evictions)` rows,
    /// sorted by fingerprint so the `/metrics` output is deterministic.
    fn per_design(&self) -> Vec<(String, usize, u64)> {
        let mut rows: Vec<(String, usize, u64)> = self
            .entries
            .iter()
            .map(|(key, (cache, _))| {
                let (a, o) = cache.entry_counts();
                (design_fingerprint(key), a + o, cache.stats().evictions)
            })
            .collect();
        rows.sort();
        rows
    }
}

/// Short stable identifier for a base design, for metric labels: FNV-1a
/// over the canonical spec JSON the [`CacheLru`] is keyed by.
fn design_fingerprint(key: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Why an analysis request was not executed (or executed but produced
/// no result).
enum Shed {
    /// The admission queue was full.
    QueueFull,
    /// The request's deadline passed before a worker picked it up.
    Deadline,
    /// The server is draining.
    ShuttingDown,
    /// The job panicked on its worker. The panic was caught by the pool,
    /// the worker was respawned, and only this request is affected.
    JobPanicked,
}

struct Inner {
    metrics: Metrics,
    caches: Mutex<CacheLru>,
    sessions: SessionStore,
    /// `None` once shutdown has begun (taken by the drainer).
    pool: Mutex<Option<parx::Pool>>,
    shutting_down: AtomicBool,
    /// Requests currently between parse and response write; the drainer
    /// waits for this to reach zero so no response is cut off mid-write.
    active: Mutex<usize>,
    idle: Condvar,
    max_body: usize,
    default_deadline_ms: u64,
    /// Present in coordinator mode: the worker fleet `/explore` and
    /// `/sweep` fan out to.
    cluster: Option<Arc<Cluster>>,
}

impl Inner {
    /// Runs `job` on the worker pool, waiting for its result. While the
    /// job runs, the connection socket (when given) is polled for EOF so
    /// a client that hangs up cancels its own in-flight work via
    /// `cancel`; the pool worker is never abandoned — this always waits
    /// for the job to yield (a cancelled job yields within one polling
    /// iteration of its innermost loop).
    fn run_job<T: Send + 'static>(
        &self,
        deadline: Option<Instant>,
        cancel: &CancelToken,
        conn: Option<&TcpStream>,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> Result<T, Shed> {
        let (tx, rx) = mpsc::channel();
        {
            let pool = self.pool.lock().expect("pool slot poisoned");
            let Some(pool) = pool.as_ref() else {
                return Err(Shed::ShuttingDown);
            };
            pool.try_submit(move || {
                if deadline.is_some_and(|d| Instant::now() > d) {
                    let _ = tx.send(Err(Shed::Deadline));
                } else {
                    let _ = tx.send(Ok(job()));
                }
            })
            .map_err(|_| Shed::QueueFull)?;
        }
        loop {
            match rx.recv_timeout(DISCONNECT_POLL_INTERVAL) {
                Ok(result) => return result,
                // The sender was dropped without sending: the job
                // panicked mid-execution (the pool caught it and
                // respawned the worker).
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(Shed::JobPanicked),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if peer_disconnected(conn) {
                        cancel.cancel(CancelReason::Disconnected);
                        // Keep waiting: the job observes the token and
                        // returns shortly; the worker slot is freed by
                        // the job itself, never by walking away.
                    }
                }
            }
        }
    }
}

/// Nonblocking EOF probe: true when the client has closed (or reset) the
/// connection. Pipelined request bytes and quiet-but-open sockets both
/// report false. `peek` consumes nothing, so a pipelined request is left
/// intact for the connection loop.
fn peer_disconnected(conn: Option<&TcpStream>) -> bool {
    let Some(stream) = conn else {
        return false;
    };
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// A running analysis service.
///
/// [`Server::start`] binds and spawns the worker pool; [`Server::run`]
/// serves until a `POST /shutdown` arrives, then drains every queued and
/// running job before returning.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// I/O errors binding `config.addr`.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        // The daemon always runs with tracing on: `/trace` and the
        // per-phase histograms on `/metrics` are part of its API. (The
        // disabled-by-default path matters for the CLI and benchmarks,
        // not here.)
        trace::set_enabled(true);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            metrics: Metrics::new(),
            caches: Mutex::new(CacheLru::new(
                config.design_cache_capacity,
                config.cache_capacity,
            )),
            sessions: SessionStore::new(config.session_capacity),
            pool: Mutex::new(Some(parx::Pool::new(
                config.workers,
                config.queue_capacity.max(1),
            ))),
            shutting_down: AtomicBool::new(false),
            active: Mutex::new(0),
            idle: Condvar::new(),
            max_body: config.max_body_bytes,
            default_deadline_ms: config.default_deadline_ms,
            cluster: config.cluster.map(Cluster::start),
        });
        Ok(Server {
            listener,
            addr,
            inner,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves requests until `POST /shutdown`, then drains: the listener
    /// stops accepting, every queued and running analysis job finishes,
    /// and every in-flight response is written before this returns.
    ///
    /// # Errors
    ///
    /// Fatal listener I/O errors (per-connection errors only drop that
    /// connection).
    pub fn run(self) -> io::Result<()> {
        let addr = self.addr;
        for stream in self.listener.incoming() {
            if self.inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    // Responses are written headers-then-body; without
                    // this, Nagle + delayed ACK stalls keep-alive
                    // round-trips by ~40 ms each.
                    let _ = stream.set_nodelay(true);
                    let inner = Arc::clone(&self.inner);
                    std::thread::spawn(move || handle_connection(&inner, stream, addr));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            }
        }
        // Drain: stop admitting (the slot becomes `None`), run every job
        // already accepted, then wait for the responses to hit the wire.
        let pool = self.inner.pool.lock().expect("pool slot poisoned").take();
        if let Some(pool) = pool {
            pool.shutdown();
        }
        let mut active = self.inner.active.lock().expect("active poisoned");
        while *active > 0 {
            active = self.inner.idle.wait(active).expect("active poisoned");
        }
        drop(active);
        // Every in-flight forwarded subjob rode a connection thread that
        // just finished, so the prober is the only cluster thread left.
        if let Some(cluster) = &self.inner.cluster {
            cluster.stop();
        }
        Ok(())
    }
}

/// Decrements the active-request count on drop, waking the drainer.
struct ActiveGuard<'a>(&'a Inner);

impl<'a> ActiveGuard<'a> {
    fn enter(inner: &'a Inner) -> ActiveGuard<'a> {
        *inner.active.lock().expect("active poisoned") += 1;
        ActiveGuard(inner)
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        let mut active = self.0.active.lock().expect("active poisoned");
        *active -= 1;
        if *active == 0 {
            self.0.idle.notify_all();
        }
    }
}

fn handle_connection(inner: &Inner, stream: TcpStream, server_addr: SocketAddr) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, inner.max_body) {
            Ok(req) => {
                let guard = ActiveGuard::enter(inner);
                let started = Instant::now();
                let outcome = route(inner, &req, Some(&writer));
                let endpoint = outcome.endpoint;
                inner
                    .metrics
                    .record_request(endpoint, outcome.response.status);
                if matches!(
                    endpoint,
                    "analyze"
                        | "order"
                        | "explore"
                        | "sweep"
                        | "verify"
                        | "session_open"
                        | "session_edit"
                        | "session_verify"
                ) {
                    inner.metrics.observe_latency(endpoint, started.elapsed());
                }
                let keep = req.keep_alive() && !outcome.close_after;
                let write_ok = outcome.response.write_to(&mut writer, keep).is_ok();
                drop(guard);
                if outcome.initiate_shutdown {
                    initiate_shutdown(inner, server_addr);
                }
                if !write_ok || !keep {
                    return;
                }
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Malformed { status, reason }) => {
                inner.metrics.record_request("malformed", status);
                let _ = Response::text(status, reason + "\n").write_to(&mut writer, false);
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

/// Flags the server as draining and unblocks the acceptor (which sits in
/// `accept()`) with a throwaway connection to itself.
fn initiate_shutdown(inner: &Inner, addr: SocketAddr) {
    if !inner.shutting_down.swap(true, Ordering::SeqCst) {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.write_all(b"");
        }
    }
}

struct Outcome {
    response: Response,
    endpoint: &'static str,
    close_after: bool,
    initiate_shutdown: bool,
}

impl Outcome {
    fn reply(endpoint: &'static str, response: Response) -> Outcome {
        Outcome {
            response,
            endpoint,
            close_after: false,
            initiate_shutdown: false,
        }
    }
}

fn route(inner: &Inner, req: &Request, conn: Option<&TcpStream>) -> Outcome {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Outcome::reply("healthz", healthz_response(inner)),
        ("GET", "/metrics") => Outcome::reply("metrics", metrics_response(inner)),
        ("GET", "/trace") => Outcome::reply("trace", trace_response(req)),
        ("GET", "/trace/slow") => Outcome::reply("trace_slow", trace_slow_response(req)),
        ("POST", "/shutdown") => Outcome {
            response: Response::text(200, "draining\n"),
            endpoint: "shutdown",
            close_after: true,
            initiate_shutdown: true,
        },
        ("POST", "/analyze") => analysis_endpoint(inner, req, "analyze", conn),
        ("POST", "/order") => analysis_endpoint(inner, req, "order", conn),
        ("POST", "/explore") => analysis_endpoint(inner, req, "explore", conn),
        ("POST", "/sweep") => analysis_endpoint(inner, req, "sweep", conn),
        ("POST", "/verify") => analysis_endpoint(inner, req, "verify", conn),
        ("POST", "/shard/sweeppoint") => shard_sweep_point_endpoint(inner, req, conn),
        ("POST", "/session") => session_open_endpoint(inner, req, conn),
        (method, path) if path == "/session" || path.starts_with("/session/") => {
            session_route(inner, method, path, req, conn)
        }
        // Known paths with the wrong method: 405 with the allowed verb,
        // never a 404 (the resource exists; the method is the problem).
        (_, "/healthz" | "/metrics" | "/trace" | "/trace/slow") => {
            Outcome::reply("other", method_not_allowed("GET"))
        }
        (
            _,
            "/shutdown" | "/analyze" | "/order" | "/explore" | "/sweep" | "/verify"
            | "/shard/sweeppoint",
        ) => Outcome::reply("other", method_not_allowed("POST")),
        _ => Outcome::reply("other", Response::text(404, "no such endpoint\n")),
    }
}

/// A `405` naming the method the path does support, per RFC 9110 §15.5.6
/// (the `Allow` header is mandatory on 405).
fn method_not_allowed(allow: &'static str) -> Response {
    let mut response = Response::text(405, "method not allowed\n");
    response.extra_headers.push(("allow", allow.to_string()));
    response
}

/// Dispatches `/session` (wrong method) and `/session/{id}[/edit]`.
fn session_route(
    inner: &Inner,
    method: &str,
    path: &str,
    req: &Request,
    conn: Option<&TcpStream>,
) -> Outcome {
    let Some(tail) = path.strip_prefix("/session/") else {
        // `/session` with a non-POST method.
        return Outcome::reply("other", method_not_allowed("POST"));
    };
    let (id_text, action) = match tail.split_once('/') {
        None => (tail, None),
        Some((id, action)) => (id, Some(action)),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Outcome::reply("other", Response::text(404, "no such endpoint\n"));
    };
    match (method, action) {
        ("POST", Some("edit")) => session_edit_endpoint(inner, req, id, conn),
        ("POST", Some("verify")) => session_verify_endpoint(inner, req, id, conn),
        ("DELETE", None) => session_close_endpoint(inner, id),
        (_, Some("edit" | "verify")) => Outcome::reply("other", method_not_allowed("POST")),
        (_, None) => Outcome::reply("other", method_not_allowed("DELETE")),
        _ => Outcome::reply("other", Response::text(404, "no such endpoint\n")),
    }
}

/// Liveness with per-component detail. The first line stays exactly
/// `ok` (probes — including a coordinator's — and scripts grep for it);
/// each following line is one `component: value` pair so scripts can
/// assert on individual components. A panicked worker is respawned
/// before its thread exits, so health stays green across panics — the
/// restart counter is how an operator notices them. In coordinator mode
/// the fleet's health states and the degraded-fallback count follow.
fn healthz_response(inner: &Inner) -> Response {
    use std::fmt::Write as _;
    let (alive, workers, restarts, queue_depth) = {
        let pool = inner.pool.lock().expect("pool slot poisoned");
        pool.as_ref().map_or((0, 0, 0, 0), |p| {
            (
                p.alive_workers(),
                p.workers(),
                p.worker_restarts(),
                p.queue_depth(),
            )
        })
    };
    let mut body = format!("ok\nworkers: {alive}/{workers} alive\nworker restarts: {restarts}\n");
    let _ = writeln!(body, "sessions live: {}", inner.sessions.live());
    let _ = writeln!(body, "queue depth: {queue_depth}");
    let (journal_live, journal_capacity) = trace::journal_occupancy();
    let flight = trace::flight::stats();
    let _ = writeln!(
        body,
        "trace: journal {journal_live}/{journal_capacity}, flight {} retained, {} dropped",
        flight.retained_live, flight.dropped_total
    );
    if let Some(cluster) = &inner.cluster {
        let states = cluster.worker_states();
        let up = states
            .iter()
            .filter(|(_, s)| *s == parx::HealthState::Up)
            .count();
        let _ = writeln!(body, "cluster workers: {up}/{} up", states.len());
        for (addr, state) in &states {
            let _ = writeln!(body, "cluster worker {addr}: {}", state.label());
        }
        let _ = writeln!(
            body,
            "cluster degraded jobs: {}",
            cluster.metrics.degraded_total()
        );
    }
    Response::text(200, body)
}

fn metrics_response(inner: &Inner) -> Response {
    let (queue_depth, running, workers, alive, restarts) = {
        let pool = inner.pool.lock().expect("pool slot poisoned");
        pool.as_ref().map_or((0, 0, 0, 0, 0), |p| {
            (
                p.queue_depth(),
                p.running(),
                p.workers(),
                p.alive_workers(),
                p.worker_restarts(),
            )
        })
    };
    let (stats, cache_entries, designs, per_design) = {
        let caches = inner.caches.lock().expect("cache lru poisoned");
        let (stats, entries) = caches.aggregate();
        (stats, entries, caches.entries.len(), caches.per_design())
    };
    let mut gauges: Vec<(&str, &str, f64)> = vec![
        (
            "ermesd_queue_depth",
            "Analysis jobs waiting in the admission queue.",
            queue_depth as f64,
        ),
        (
            "ermesd_jobs_running",
            "Analysis jobs currently executing.",
            running as f64,
        ),
        ("ermesd_workers", "Analysis worker threads.", workers as f64),
        (
            "ermesd_workers_alive",
            "Analysis worker threads currently alive (respawn closes any gap).",
            alive as f64,
        ),
        (
            "ermesd_design_caches",
            "Distinct base designs with a live engine cache.",
            designs as f64,
        ),
        (
            "ermesd_cache_entries",
            "Memoized results stored across all engine caches.",
            cache_entries as f64,
        ),
        (
            "ermesd_cache_analysis_hits",
            "Aggregated analysis-cache hits across live engine caches.",
            stats.analysis_hits as f64,
        ),
        (
            "ermesd_cache_analysis_misses",
            "Aggregated analysis-cache misses across live engine caches.",
            stats.analysis_misses as f64,
        ),
        (
            "ermesd_cache_ordering_hits",
            "Aggregated ordering-cache hits across live engine caches.",
            stats.ordering_hits as f64,
        ),
        (
            "ermesd_cache_ordering_misses",
            "Aggregated ordering-cache misses across live engine caches.",
            stats.ordering_misses as f64,
        ),
        (
            "ermesd_cache_evictions",
            "Aggregated LRU evictions across live engine caches.",
            stats.evictions as f64,
        ),
        (
            "ermes_sessions_live",
            "Interactive analysis sessions currently open.",
            inner.sessions.live() as f64,
        ),
    ];
    let ilp = ilp::stats();
    let mut sampled_counters: Vec<(&str, &str, u64)> = vec![
        (
            "ermes_worker_restarts_total",
            "Pool workers respawned after a job panicked on them.",
            restarts,
        ),
        (
            "ermes_ilp_nodes_total",
            "Branch & bound nodes explored by the selection-ILP solver.",
            ilp.nodes,
        ),
        (
            "ermes_ilp_warmstart_hits_total",
            "Node LPs satisfied by simplex basis reuse instead of a cold solve.",
            ilp.warmstart_hits,
        ),
        (
            "ermes_session_opened_total",
            "Interactive sessions opened.",
            inner.sessions.opened.load(Ordering::Relaxed),
        ),
        (
            "ermes_session_edits_total",
            "Session edits applied (incremental re-analyses served).",
            inner.sessions.edits.load(Ordering::Relaxed),
        ),
        (
            "ermes_session_closed_total",
            "Interactive sessions closed by the client.",
            inner.sessions.closed.load(Ordering::Relaxed),
        ),
        (
            "ermes_session_evicted_total",
            "Interactive sessions evicted by the LRU bound.",
            inner.sessions.evicted.load(Ordering::Relaxed),
        ),
        (
            "ermes_session_dropped_total",
            "Interactive sessions dropped after a panicked edit.",
            inner.sessions.dropped.load(Ordering::Relaxed),
        ),
        (
            "ermes_trace_header_invalid_total",
            "Present-but-malformed x-ermes-trace headers received.",
            crate::metrics::trace_header_invalid_total(),
        ),
        (
            "ermes_trace_flight_retained_total",
            "Span trees retained by the tail-sampling flight recorder.",
            trace::flight::stats().retained_total,
        ),
        (
            "ermes_trace_flight_dropped_total",
            "Retained span trees lost to flight-recorder ring overflow.",
            trace::flight::stats().dropped_total,
        ),
    ];
    if let Some(cluster) = &inner.cluster {
        let states = cluster.worker_states();
        let count = |s: parx::HealthState| states.iter().filter(|(_, st)| *st == s).count() as f64;
        gauges.push((
            "ermes_cluster_workers_up",
            "Cluster workers currently answering health probes.",
            count(parx::HealthState::Up),
        ));
        gauges.push((
            "ermes_cluster_workers_suspect",
            "Cluster workers with recent probe failures, still dispatchable.",
            count(parx::HealthState::Suspect),
        ));
        gauges.push((
            "ermes_cluster_workers_down",
            "Cluster workers excluded from dispatch until probes recover.",
            count(parx::HealthState::Down),
        ));
        sampled_counters.extend(cluster.metrics.sampled());
    }
    let mut body = inner.metrics.render(&gauges, &sampled_counters);
    body.push_str(&render_per_design_cache(&per_design));
    body.push_str(&crate::metrics::render_phase_histograms());
    // Coordinator mode: federate every reachable worker's exposition,
    // each sample gaining a `node` label, so one scrape of the
    // coordinator sees the whole fleet.
    if let Some(cluster) = &inner.cluster {
        for (addr, exposition) in cluster.scrape_worker_metrics() {
            body.push_str(&crate::metrics::federate_exposition(&addr, &exposition));
        }
    }
    Response::text(200, body)
}

/// Opens up the per-base-design cache LRU: one `ermes_cache_entries`
/// gauge and one `ermes_cache_evictions_total` counter per live design,
/// labelled with the design's spec fingerprint.
fn render_per_design_cache(per_design: &[(String, usize, u64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if per_design.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "# HELP ermes_cache_entries Memoized results stored, per base design.\n\
         # TYPE ermes_cache_entries gauge"
    );
    for (design, entries, _) in per_design {
        let _ = writeln!(out, "ermes_cache_entries{{design=\"{design}\"}} {entries}");
    }
    let _ = writeln!(
        out,
        "# HELP ermes_cache_evictions_total Engine-cache LRU evictions, per base design.\n\
         # TYPE ermes_cache_evictions_total counter"
    );
    for (design, _, evictions) in per_design {
        let _ = writeln!(
            out,
            "ermes_cache_evictions_total{{design=\"{design}\"}} {evictions}"
        );
    }
    out
}

/// `GET /trace`: the last `n` (default 32, `?n=` to override, capped at
/// the journal capacity) completed job span trees, as JSON. Trees for
/// cancelled or panicked jobs are present too, truncated where work
/// stopped and tagged with `outcome` on the root span.
fn trace_response(req: &Request) -> Response {
    let n = req
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .clamp(1, trace::DEFAULT_JOURNAL_CAPACITY);
    let trees = trace::completed_trees(n);
    let mut out = String::from("[");
    for (i, tree) in trees.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_tree_json(&mut out, tree);
    }
    out.push_str("]\n");
    let mut response = Response::text(200, out);
    response.content_type = "application/json";
    response
}

/// `GET /trace/slow`: the flight recorder's retained trees — requests
/// that were slow (rolling per-endpoint p99 exceeders), errored,
/// panicked, degraded, or retried — oldest first, each wrapped with its
/// retention reason. `?n=` caps to the newest `n`.
fn trace_slow_response(req: &Request) -> Response {
    use std::fmt::Write as _;
    let n = req
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(trace::flight::DEFAULT_FLIGHT_CAPACITY)
        .max(1);
    let retained = trace::flight::retained();
    let skip = retained.len().saturating_sub(n);
    let mut out = String::from("[");
    for (i, entry) in retained[skip..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"reason\":\"{}\",\"tree\":",
            entry.seq,
            json_escape(entry.reason)
        );
        write_tree_json(&mut out, &entry.tree);
        out.push('}');
    }
    out.push_str("]\n");
    let mut response = Response::text(200, out);
    response.content_type = "application/json";
    response
}

/// Appends this request's completed span tree to a response body, in
/// the versioned wire form behind [`trace::TRAILER_MARKER`], for the
/// coordinator to stitch (and strip before relaying). Only called when
/// the request carried `x-ermes-trace-tree`, so a direct client's bytes
/// never change. `root_id` is the request span's id, captured while it
/// was open; a zero id (tracing disabled) attaches nothing.
fn append_tree_trailer(response: &mut Response, root_id: u64) {
    if root_id == 0 || response.status != 200 {
        return;
    }
    if let Some(tree) = trace::subtree(root_id) {
        response
            .body
            .extend_from_slice(trace::TRAILER_MARKER.as_bytes());
        response.body.extend_from_slice(tree.to_wire().as_bytes());
    }
}

fn write_tree_json(out: &mut String, tree: &trace::SpanTree) {
    use std::fmt::Write as _;
    let r = &tree.record;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"thread\":{},\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{}",
        json_escape(r.name),
        r.id,
        r.parent,
        r.thread,
        r.start_ns,
        r.end_ns,
        r.duration_ns(),
    );
    if !r.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in r.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push('}');
    }
    out.push_str(",\"children\":[");
    for (i, child) in tree.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_tree_json(out, child);
    }
    out.push_str("]}");
}

fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses, admits, and executes one analysis request end to end.
fn analysis_endpoint(
    inner: &Inner,
    req: &Request,
    endpoint: &'static str,
    conn: Option<&TcpStream>,
) -> Outcome {
    // A coordinator forwarding `/explore` propagates its trace position;
    // adopting it makes this worker's request span a child of the
    // coordinator's dispatch span (in id space — the span itself ships
    // back via the tree trailer below). Absent or malformed headers
    // adopt the inactive context, a no-op.
    let _adopted = trace::adopt(parse_trace_header(req.header("x-ermes-trace")));
    let want_tree = req.header("x-ermes-trace-tree").is_some();
    let body = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => {
            return Outcome::reply(endpoint, Response::text(400, "body is not UTF-8\n"));
        }
    };
    let spec = match crate::commands::parse_spec(body) {
        Ok(spec) => spec,
        Err(e) => {
            return Outcome::reply(endpoint, Response::text(400, format!("{e}\n")));
        }
    };
    // Validate model-level constraints up front so schema errors never
    // consume a worker slot.
    if let Err(e) = spec.to_design() {
        return Outcome::reply(endpoint, Response::text(400, format!("spec error: {e}\n")));
    }
    let params = match AnalysisParams::from_request(req, endpoint, inner.default_deadline_ms) {
        Ok(params) => params,
        Err(msg) => return Outcome::reply(endpoint, Response::text(400, msg + "\n")),
    };
    // Coordinator mode: exploration work is fanned out to the worker
    // fleet. `None` from the forwarders means the cluster could not
    // serve the job (degraded mode) — fall through and run it locally,
    // exactly as a single-node daemon would.
    if let Some(cluster) = &inner.cluster {
        let forwarded = match endpoint {
            "explore" => forward_explore(req, cluster, &spec, &params),
            "sweep" => coordinator_sweep(inner, cluster, &spec, &params),
            _ => None,
        };
        if let Some(response) = forwarded {
            let close_after = response.status == 499;
            return Outcome {
                response,
                endpoint,
                close_after,
                initiate_shutdown: false,
            };
        }
    }
    let cache = inner
        .caches
        .lock()
        .expect("cache lru poisoned")
        .get(&spec.to_json_pretty());
    let deadline = params.deadline;
    // One token per request: it self-cancels when the deadline passes
    // mid-run, and the connection poll in `run_job` cancels it when the
    // client hangs up. The job polls it at iteration boundaries.
    let cancel = CancelToken::with_deadline(deadline);
    let job_token = cancel.clone();
    // Root span of this request's trace tree. It is open on this thread
    // while the job is submitted, so `Pool::try_submit` captures it and
    // the worker's engine spans parent under it; it closes here, after
    // the job has yielded, which is what makes a tree "completed" —
    // including truncated trees of cancelled and panicked jobs.
    let request_span = trace::span("request");
    trace::attr("endpoint", endpoint);
    let root_id = trace::current_context().parent();
    let job = move || run_command(endpoint, &spec, &params, &cache, &job_token);
    let result = inner.run_job(deadline, &cancel, conn, job);
    trace::attr(
        "outcome",
        match &result {
            Ok(Ok(_)) => "ok",
            Ok(Err(CliError::Ermes(ermes::ErmesError::Cancelled { .. }))) => "cancelled",
            Ok(Err(_)) => "error",
            Err(Shed::JobPanicked) => "panic",
            Err(_) => "shed",
        },
    );
    drop(request_span);
    let mut response = match result {
        Ok(Ok(body)) => Response::text(200, body),
        Ok(Err(e)) => error_response(inner, &e),
        Err(shed) => shed_response(inner, &shed),
    };
    if want_tree {
        append_tree_trailer(&mut response, root_id);
    }
    // A 499 means the client is gone; drop the connection after the
    // (best-effort) write instead of waiting for another request.
    let close_after = response.status == 499;
    Outcome {
        response,
        endpoint,
        close_after,
        initiate_shutdown: false,
    }
}

/// Per-request parameters of the analysis endpoints.
struct AnalysisParams {
    target: u64,
    targets: Vec<u64>,
    jobs: usize,
    deadline: Option<Instant>,
}

impl AnalysisParams {
    fn from_request(
        req: &Request,
        endpoint: &str,
        default_deadline_ms: u64,
    ) -> Result<AnalysisParams, String> {
        let jobs = parx::parse_jobs("jobs", req.query_param("jobs"), 1)?;
        let target = match endpoint {
            "explore" => req
                .query_param("target")
                .ok_or("explore requires ?target=<cycles>")?
                .parse()
                .map_err(|_| "target must be a non-negative integer".to_string())?,
            _ => 0,
        };
        let targets = match endpoint {
            "sweep" => req
                .query_param("targets")
                .ok_or("sweep requires ?targets=<a,b,c>")?
                .split(',')
                .map(|t| t.trim().parse())
                .collect::<Result<Vec<u64>, _>>()
                .map_err(|_| "targets must be comma-separated non-negative integers".to_string())?,
            _ => Vec::new(),
        };
        let deadline = request_deadline(req, default_deadline_ms)?;
        Ok(AnalysisParams {
            target,
            targets,
            jobs,
            deadline,
        })
    }
}

/// Resolves a request's deadline: the `deadline_ms` query parameter,
/// falling back to the server default; `0` disables the deadline.
fn request_deadline(req: &Request, default_deadline_ms: u64) -> Result<Option<Instant>, String> {
    let deadline_ms = match req.query_param("deadline_ms") {
        None => default_deadline_ms,
        Some(text) => text
            .parse()
            .map_err(|_| "deadline_ms must be a non-negative integer".to_string())?,
    };
    Ok((deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms)))
}

/// Executes one command; the response body composition is the identity
/// contract documented at the top of this module. Every command polls
/// `cancel` at its iteration boundaries; with a live token the output is
/// bit-identical to the plain CLI command.
fn run_command(
    endpoint: &str,
    spec: &SystemSpec,
    params: &AnalysisParams,
    cache: &EngineCache,
    cancel: &CancelToken,
) -> Result<String, CliError> {
    match endpoint {
        "analyze" => cmd_analyze_cancellable(spec, cache, cancel),
        // `order` runs one combinatorial pass with no iteration structure
        // to poll; it is fast enough to always run to completion.
        "order" => {
            let (report, json) = cmd_order(spec)?;
            Ok(format!("{report}{json}\n"))
        }
        "explore" => {
            let (report, json) =
                cmd_explore_cancellable(spec, params.target, params.jobs, cache, cancel)?;
            Ok(format!("{report}{json}\n"))
        }
        "sweep" => cmd_sweep_cancellable(spec, &params.targets, params.jobs, cache, cancel),
        // `verify` builds its own transition system per request; the
        // engine cache memoizes TMG analysis, not certification, so the
        // command takes only the spec and the token.
        "verify" => cmd_verify_cancellable(spec, cancel),
        _ => unreachable!("routed endpoints only"),
    }
}

/// Coordinator path for `POST /explore`: the whole request is forwarded
/// to the ring owner of `(spec, target)` — an exploration is one atomic
/// greedy walk, so the unit of distribution is the request itself. The
/// worker's verdict (success or deterministic error) is relayed
/// verbatim, which is what keeps the bytes identical to a local run.
/// `None` means the cluster could not serve the job (all replicas
/// exhausted); the caller runs it locally, degraded but correct.
fn forward_explore(
    req: &Request,
    cluster: &Arc<Cluster>,
    spec: &SystemSpec,
    params: &AnalysisParams,
) -> Option<Response> {
    use std::fmt::Write as _;
    let request_span = trace::span("request");
    trace::attr("endpoint", "explore");
    trace::attr("forwarded", 1);
    let key = shard_key(&spec.to_json_pretty(), params.target);
    let mut target = format!("/explore?target={}", params.target);
    if params.jobs != 1 {
        let _ = write!(target, "&jobs={}", params.jobs);
    }
    // The worker runs un-deadlined: the coordinator's subjob timeout
    // already bounds the wait, and a relayed deadline would let time
    // burned by a failed first attempt cut a retry short.
    let result = cluster.dispatch(key, "POST", &target, &req.body);
    trace::attr("outcome", if result.is_ok() { "ok" } else { "degraded" });
    drop(request_span);
    match result {
        Ok(reply) => Some(relay(reply)),
        Err(_) => {
            cluster.metrics.record_degraded();
            None
        }
    }
}

/// Re-wraps a worker's reply for the coordinator's client: status and
/// body are relayed verbatim (the bit-identity contract), the retry
/// semantics headers survive, and hop-by-hop framing does not.
fn relay(reply: ClientResponse) -> Response {
    let mut response = Response::text(
        reply.status,
        String::from_utf8_lossy(&reply.body).into_owned(),
    );
    for name in ["retry-after", "x-ermes-progress"] {
        if let Some(value) = reply.header(name) {
            response.extra_headers.push((name, value.to_string()));
        }
    }
    response
}

/// One subjob of a coordinated sweep, as gathered in ladder order.
enum SubjobOutcome {
    /// A worker (or the local fallback) produced the point.
    Point(ermes::SweepPoint),
    /// A worker answered with a deterministic non-retryable verdict
    /// (e.g. `422` for a deadlocking configuration) — relayed verbatim,
    /// exactly the bytes a local sweep would have produced for the
    /// first failing target.
    Verdict(ClientResponse),
    /// The local fallback itself failed (including cancellation).
    Local(ermes::ErmesError),
}

/// Coordinator path for `POST /sweep`: each ladder target is one subjob
/// keyed by `(spec, target)`, so repeat sweeps of one design land on
/// the same — warm — workers while the ladder spreads over the fleet.
/// Subjobs the cluster cannot serve (retries exhausted, no live
/// workers) are computed in-process: degraded mode trades throughput
/// for availability, never correctness. Points come back as exact
/// values ([`parse_point_wire`]) in ladder order and go through the
/// same [`ermes::prune_front`] + [`render_sweep_front`] as a local
/// sweep, which makes the response bytes identical at any worker
/// count, retry schedule, or failure pattern.
///
/// `None` (all workers `Down` before the fan-out starts) sends the
/// whole request down the local path with its pool admission control.
fn coordinator_sweep(
    inner: &Inner,
    cluster: &Arc<Cluster>,
    spec: &SystemSpec,
    params: &AnalysisParams,
) -> Option<Response> {
    if cluster
        .worker_states()
        .iter()
        .all(|(_, s)| *s == parx::HealthState::Down)
    {
        cluster.metrics.record_degraded();
        return None;
    }
    let design = spec.to_design().ok()?; // prechecked by the caller
    let spec_json = spec.to_json_pretty();
    let request_span = trace::span("request");
    trace::attr("endpoint", "sweep");
    trace::attr("fanout", params.targets.len());
    let cache = inner
        .caches
        .lock()
        .expect("cache lru poisoned")
        .get(&spec_json);
    let options = ermes::SweepOptions {
        jobs: 1,
        memoize: true,
    };
    let cancel = CancelToken::with_deadline(params.deadline);
    // Fan out every target at once: subjobs are network-bound waits,
    // so the thread count is the ladder length, not the local core
    // count. `par_map` preserves ladder order in the gather, which the
    // prune's tie-break depends on.
    let outcomes = parx::par_map(
        params.targets.len().max(1),
        &params.targets,
        |_, &target| {
            let key = shard_key(&spec_json, target);
            let path = format!("/shard/sweeppoint?target={target}");
            match cluster.dispatch(key, "POST", &path, spec_json.as_bytes()) {
                Ok(reply) if reply.status == 200 => {
                    match parse_point_wire(&String::from_utf8_lossy(&reply.body)) {
                        Some(point) => SubjobOutcome::Point(point),
                        // A 200 whose body does not parse is a worker
                        // bug or a truncation the transport missed;
                        // recompute rather than trust it.
                        None => local_point(cluster, &design, target, &options, &cache, &cancel),
                    }
                }
                Ok(reply) => SubjobOutcome::Verdict(reply),
                Err(_) => local_point(cluster, &design, target, &options, &cache, &cancel),
            }
        },
    );
    let total = params.targets.len();
    let mut points = Vec::with_capacity(total);
    let mut verdict = None;
    for (index, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            SubjobOutcome::Point(point) => points.push(point),
            // First failure in ladder order wins, matching the serial
            // sweep's error report.
            SubjobOutcome::Verdict(reply) => {
                verdict = Some(relay(reply));
                break;
            }
            SubjobOutcome::Local(ermes::ErmesError::Cancelled { reason, .. }) => {
                // Re-scope to targets-within-the-sweep, as the engine's
                // own sweep loop does.
                verdict = Some(cancelled_response(inner, reason, index, total));
                break;
            }
            SubjobOutcome::Local(e) => {
                verdict = Some(error_response(inner, &CliError::Ermes(e)));
                break;
            }
        }
    }
    let response = verdict
        .unwrap_or_else(|| Response::text(200, render_sweep_front(&ermes::prune_front(points))));
    trace::attr(
        "outcome",
        if response.status == 200 {
            "ok"
        } else {
            "error"
        },
    );
    drop(request_span);
    Some(response)
}

/// Degraded-mode unit: computes one sweep target in-process when the
/// cluster could not serve it. Counted so operators see fleet trouble
/// even though clients never do.
fn local_point(
    cluster: &Arc<Cluster>,
    design: &ermes::Design,
    target: u64,
    options: &ermes::SweepOptions,
    cache: &EngineCache,
    cancel: &CancelToken,
) -> SubjobOutcome {
    cluster.metrics.record_degraded();
    // A degraded request is flight-recorder material even though its
    // root span will close with `outcome=ok` (the client never sees
    // cluster trouble).
    trace::flight::flag(trace::current_context().trace_id(), "degraded");
    match ermes::sweep_point(design.clone(), target, options, cache, Some(cancel)) {
        Ok(point) => SubjobOutcome::Point(point),
        Err(e) => SubjobOutcome::Local(e),
    }
}

/// `POST /shard/sweeppoint?target=N`: the worker-side unit of a
/// distributed sweep — one ladder target explored against the posted
/// spec, answered in the exact-value wire form ([`render_point_wire`])
/// so the coordinator reassembles *values*, never re-parsed rendered
/// text. Admission control, deadlines, cancellation, and panic
/// isolation behave exactly like the public endpoints, so coordinator
/// retries see the same shedding statuses human clients do. The
/// coordinator's trace context arrives in `x-ermes-trace`; the job's
/// spans parent under it, stitching one tree across nodes.
fn shard_sweep_point_endpoint(inner: &Inner, req: &Request, conn: Option<&TcpStream>) -> Outcome {
    const ENDPOINT: &str = "shard_sweeppoint";
    let _adopted = trace::adopt(parse_trace_header(req.header("x-ermes-trace")));
    let want_tree = req.header("x-ermes-trace-tree").is_some();
    let body = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => {
            return Outcome::reply(ENDPOINT, Response::text(400, "body is not UTF-8\n"));
        }
    };
    let spec = match crate::commands::parse_spec(body) {
        Ok(spec) => spec,
        Err(e) => {
            return Outcome::reply(ENDPOINT, Response::text(400, format!("{e}\n")));
        }
    };
    let design = match spec.to_design() {
        Ok(design) => design,
        Err(e) => {
            return Outcome::reply(ENDPOINT, Response::text(400, format!("spec error: {e}\n")));
        }
    };
    let target: u64 = match req.query_param("target") {
        None => {
            return Outcome::reply(
                ENDPOINT,
                Response::text(400, "sweeppoint requires ?target=<cycles>\n"),
            );
        }
        Some(text) => match text.parse() {
            Ok(target) => target,
            Err(_) => {
                return Outcome::reply(
                    ENDPOINT,
                    Response::text(400, "target must be a non-negative integer\n"),
                );
            }
        },
    };
    let deadline = match request_deadline(req, inner.default_deadline_ms) {
        Ok(deadline) => deadline,
        Err(msg) => return Outcome::reply(ENDPOINT, Response::text(400, msg + "\n")),
    };
    let cache = inner
        .caches
        .lock()
        .expect("cache lru poisoned")
        .get(&spec.to_json_pretty());
    let cancel = CancelToken::with_deadline(deadline);
    let job_token = cancel.clone();
    let request_span = trace::span("request");
    trace::attr("endpoint", ENDPOINT);
    trace::attr("target", target);
    let root_id = trace::current_context().parent();
    let job = move || {
        ermes::sweep_point(
            design,
            target,
            &ermes::SweepOptions {
                jobs: 1,
                memoize: true,
            },
            &cache,
            Some(&job_token),
        )
    };
    let result = inner.run_job(deadline, &cancel, conn, job);
    trace::attr(
        "outcome",
        match &result {
            Ok(Ok(_)) => "ok",
            Ok(Err(ermes::ErmesError::Cancelled { .. })) => "cancelled",
            Ok(Err(_)) => "error",
            Err(Shed::JobPanicked) => "panic",
            Err(_) => "shed",
        },
    );
    drop(request_span);
    let mut response = match result {
        Ok(Ok(point)) => Response::text(200, render_point_wire(&point)),
        Ok(Err(e)) => error_response(inner, &CliError::Ermes(e)),
        Err(shed) => shed_response(inner, &shed),
    };
    if want_tree {
        append_tree_trailer(&mut response, root_id);
    }
    let close_after = response.status == 499;
    Outcome {
        response,
        endpoint: ENDPOINT,
        close_after,
        initiate_shutdown: false,
    }
}

/// `POST /session`: parses the spec, runs the initial full analysis on
/// the worker pool, stores the resulting session, and answers with the
/// analysis — bit-identical to `POST /analyze` on the same spec — plus
/// an `x-ermes-session: {id}` header the client quotes back on edits.
fn session_open_endpoint(inner: &Inner, req: &Request, conn: Option<&TcpStream>) -> Outcome {
    const ENDPOINT: &str = "session_open";
    let body = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => {
            return Outcome::reply(ENDPOINT, Response::text(400, "body is not UTF-8\n"));
        }
    };
    let spec = match crate::commands::parse_spec(body) {
        Ok(spec) => spec,
        Err(e) => {
            return Outcome::reply(ENDPOINT, Response::text(400, format!("{e}\n")));
        }
    };
    // Like the stateless endpoints: schema errors never consume a
    // worker slot. The design built here is the one the session keeps.
    let design = match spec.to_design() {
        Ok(design) => design,
        Err(e) => {
            return Outcome::reply(ENDPOINT, Response::text(400, format!("spec error: {e}\n")));
        }
    };
    let deadline = match request_deadline(req, inner.default_deadline_ms) {
        Ok(deadline) => deadline,
        Err(msg) => return Outcome::reply(ENDPOINT, Response::text(400, msg + "\n")),
    };
    let cancel = CancelToken::with_deadline(deadline);
    let job_token = cancel.clone();
    let request_span = trace::span("request");
    trace::attr("endpoint", ENDPOINT);
    let job = move || {
        ermes::DeltaState::open_cancellable(design, Some(&job_token)).map(|state| {
            let body = render_session_report(&state);
            (state, body)
        })
    };
    let result = inner.run_job(deadline, &cancel, conn, job);
    trace::attr(
        "outcome",
        match &result {
            Ok(Ok(_)) => "ok",
            Ok(Err(ermes::ErmesError::Cancelled { .. })) => "cancelled",
            Ok(Err(_)) => "error",
            Err(Shed::JobPanicked) => "panic",
            Err(_) => "shed",
        },
    );
    drop(request_span);
    let response = match result {
        Ok(Ok((state, body))) => {
            let id = inner.sessions.insert(state);
            let mut response = Response::text(200, body);
            response
                .extra_headers
                .push(("x-ermes-session", id.to_string()));
            response
        }
        Ok(Err(e)) => error_response(inner, &CliError::Ermes(e)),
        Err(shed) => shed_response(inner, &shed),
    };
    let close_after = response.status == 499;
    Outcome {
        response,
        endpoint: ENDPOINT,
        close_after,
        initiate_shutdown: false,
    }
}

/// `POST /session/{id}/edit`: applies one reselect/reorder edit to the
/// session under its lock on the worker pool and answers with the full
/// re-analysis — bit-identical to `POST /analyze` on a spec capturing
/// the session's post-edit design, but computed incrementally (dirty-SCC
/// reprice for reselects, component-reusing rebuild for reorders).
///
/// A cancelled edit (deadline / disconnect / drain) leaves the edit
/// applied and the analysis pending; the next edit settles it first. A
/// *panicked* edit poisons only this session: the session is dropped,
/// the worker restarted, and every other session keeps working.
fn session_edit_endpoint(
    inner: &Inner,
    req: &Request,
    id: u64,
    conn: Option<&TcpStream>,
) -> Outcome {
    const ENDPOINT: &str = "session_edit";
    let Some(session) = inner.sessions.get(id) else {
        return Outcome::reply(ENDPOINT, Response::text(404, format!("no session {id}\n")));
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => {
            return Outcome::reply(ENDPOINT, Response::text(400, "body is not UTF-8\n"));
        }
    };
    let edit = match parse_edit(body) {
        Ok(edit) => edit,
        Err(msg) => return Outcome::reply(ENDPOINT, Response::text(400, msg + "\n")),
    };
    let deadline = match request_deadline(req, inner.default_deadline_ms) {
        Ok(deadline) => deadline,
        Err(msg) => return Outcome::reply(ENDPOINT, Response::text(400, msg + "\n")),
    };
    let cancel = CancelToken::with_deadline(deadline);
    let job_token = cancel.clone();
    let request_span = trace::span("request");
    trace::attr("endpoint", ENDPOINT);
    trace::attr("session", id);
    // `None` = the session mutex is poisoned: an earlier edit panicked
    // on its worker while holding the lock.
    let job = move || -> Option<Result<String, CliError>> {
        let Ok(mut state) = session.lock() else {
            return None;
        };
        Some(
            apply_edit(&mut state, &edit, Some(&job_token)).map(|()| render_session_report(&state)),
        )
    };
    let result = inner.run_job(deadline, &cancel, conn, job);
    trace::attr(
        "outcome",
        match &result {
            Ok(Some(Ok(_))) => "ok",
            Ok(Some(Err(CliError::Ermes(ermes::ErmesError::Cancelled { .. })))) => "cancelled",
            Ok(Some(Err(_))) => "error",
            Ok(None) => "poisoned",
            Err(Shed::JobPanicked) => "panic",
            Err(_) => "shed",
        },
    );
    drop(request_span);
    let response = match result {
        Ok(Some(Ok(body))) => {
            inner.sessions.edits.fetch_add(1, Ordering::Relaxed);
            let mut response = Response::text(200, body);
            response
                .extra_headers
                .push(("x-ermes-session", id.to_string()));
            response
        }
        Ok(Some(Err(e))) => error_response(inner, &e),
        Ok(None) => {
            inner.sessions.remove(id, &inner.sessions.dropped);
            Response::text(
                500,
                format!("session {id} was corrupted by a panicked edit and has been dropped\n"),
            )
        }
        Err(Shed::JobPanicked) => {
            inner.metrics.record_job_panicked();
            inner.sessions.remove(id, &inner.sessions.dropped);
            Response::text(
                500,
                format!(
                    "analysis worker panicked on this edit; worker restarted, session {id} dropped\n"
                ),
            )
        }
        Err(shed) => shed_response(inner, &shed),
    };
    let close_after = response.status == 499;
    Outcome {
        response,
        endpoint: ENDPOINT,
        close_after,
        initiate_shutdown: false,
    }
}

/// `POST /session/{id}/verify`: certifies the session's *current*
/// design — after any number of incremental edits — deadlock-free (or
/// refutes it), bit-identical to `POST /verify` on a spec capturing the
/// session's present state. Runs on the worker pool under the session
/// lock with the same deadline/cancellation/panic rules as an edit; a
/// panicked verification drops only this session.
fn session_verify_endpoint(
    inner: &Inner,
    req: &Request,
    id: u64,
    conn: Option<&TcpStream>,
) -> Outcome {
    const ENDPOINT: &str = "session_verify";
    let Some(session) = inner.sessions.get(id) else {
        return Outcome::reply(ENDPOINT, Response::text(404, format!("no session {id}\n")));
    };
    let deadline = match request_deadline(req, inner.default_deadline_ms) {
        Ok(deadline) => deadline,
        Err(msg) => return Outcome::reply(ENDPOINT, Response::text(400, msg + "\n")),
    };
    let cancel = CancelToken::with_deadline(deadline);
    let job_token = cancel.clone();
    let request_span = trace::span("request");
    trace::attr("endpoint", ENDPOINT);
    trace::attr("session", id);
    // `None` = the session mutex is poisoned by an earlier panicked edit.
    let job = move || -> Option<Result<String, CliError>> {
        let Ok(state) = session.lock() else {
            return None;
        };
        Some(render_verify_system(
            state.design().system(),
            Some(&job_token),
        ))
    };
    let result = inner.run_job(deadline, &cancel, conn, job);
    trace::attr(
        "outcome",
        match &result {
            Ok(Some(Ok(_))) => "ok",
            Ok(Some(Err(CliError::Ermes(ermes::ErmesError::Cancelled { .. })))) => "cancelled",
            Ok(Some(Err(_))) => "error",
            Ok(None) => "poisoned",
            Err(Shed::JobPanicked) => "panic",
            Err(_) => "shed",
        },
    );
    drop(request_span);
    let response = match result {
        Ok(Some(Ok(body))) => {
            let mut response = Response::text(200, body);
            response
                .extra_headers
                .push(("x-ermes-session", id.to_string()));
            response
        }
        Ok(Some(Err(e))) => error_response(inner, &e),
        Ok(None) => {
            inner.sessions.remove(id, &inner.sessions.dropped);
            Response::text(
                500,
                format!("session {id} was corrupted by a panicked edit and has been dropped\n"),
            )
        }
        Err(Shed::JobPanicked) => {
            inner.metrics.record_job_panicked();
            inner.sessions.remove(id, &inner.sessions.dropped);
            Response::text(
                500,
                format!(
                    "analysis worker panicked verifying session {id}; worker restarted, session dropped\n"
                ),
            )
        }
        Err(shed) => shed_response(inner, &shed),
    };
    let close_after = response.status == 499;
    Outcome {
        response,
        endpoint: ENDPOINT,
        close_after,
        initiate_shutdown: false,
    }
}

/// `DELETE /session/{id}`: drops the session (no pool round-trip —
/// freeing the state is cheap and must work even under a full queue).
fn session_close_endpoint(inner: &Inner, id: u64) -> Outcome {
    const ENDPOINT: &str = "session_close";
    let response = if inner.sessions.remove(id, &inner.sessions.closed) {
        Response::text(200, format!("session {id} closed\n"))
    } else {
        Response::text(404, format!("no session {id}\n"))
    };
    Outcome::reply(ENDPOINT, response)
}

/// Maps a shed verdict to its HTTP shape, recording the matching
/// metric. `429`s carry a `retry-after` computed from the pool's
/// current backlog (see [`retry_after_secs`]).
fn shed_response(inner: &Inner, shed: &Shed) -> Response {
    let (status, message) = match shed {
        Shed::QueueFull => {
            inner.metrics.record_shed(true);
            (429, "admission queue full; retry later\n")
        }
        Shed::Deadline => {
            inner.metrics.record_shed(false);
            (429, "deadline expired before a worker was free\n")
        }
        Shed::ShuttingDown => (503, "server is draining\n"),
        Shed::JobPanicked => {
            inner.metrics.record_job_panicked();
            (
                500,
                "analysis worker panicked on this request; worker restarted\n",
            )
        }
    };
    let mut response = Response::text(status, message);
    if status == 429 {
        response
            .extra_headers
            .push(("retry-after", retry_after_secs(inner).to_string()));
    }
    response
}

/// Seconds a `429`'d client should wait before retrying, from the
/// pool's state at response time: the backlog (queued + running jobs)
/// divided by the worker count is how many drain rounds stand between
/// the client and a free worker. Clamped to `[1, 30]` — an idle server
/// still answers 1, a saturated one never suggests more than half a
/// minute.
fn retry_after_secs(inner: &Inner) -> u64 {
    let (depth, running, workers) = {
        let pool = inner.pool.lock().expect("pool slot poisoned");
        pool.as_ref()
            .map_or((0, 0, 0), |p| (p.queue_depth(), p.running(), p.workers()))
    };
    retry_after_from(depth, running, workers)
}

/// The pure backlog → retry-after mapping behind [`retry_after_secs`].
fn retry_after_from(queue_depth: usize, running: usize, workers: usize) -> u64 {
    ((queue_depth + running) as u64)
        .div_ceil(workers.max(1) as u64)
        .clamp(1, 30)
}

fn error_response(inner: &Inner, e: &CliError) -> Response {
    if let CliError::Ermes(ermes::ErmesError::Cancelled {
        reason,
        completed,
        total,
    }) = e
    {
        return cancelled_response(inner, *reason, *completed, *total);
    }
    match e {
        CliError::Json(_) | CliError::Spec(_) | CliError::Usage(_) => {
            Response::text(400, format!("{e}\n"))
        }
        CliError::Ermes(_) => Response::text(422, format!("{e}\n")),
    }
}

/// Maps a mid-execution cancellation to its HTTP shape: deadline → 429
/// (retryable — the work *was* admitted but ran out of time), client
/// disconnect → 499 (nobody left to answer), shutdown → 503. All three
/// carry the partial-progress metadata in the body and an
/// `x-ermes-progress: completed/total` header; the 429's `retry-after`
/// reflects the pool's backlog at response time (see
/// [`retry_after_secs`]).
fn cancelled_response(
    inner: &Inner,
    reason: CancelReason,
    completed: usize,
    total: usize,
) -> Response {
    let body = format!("cancelled ({reason}) after {completed} of {total} steps\n");
    let mut response = match reason {
        CancelReason::Deadline => {
            inner.metrics.record_cancelled_deadline();
            let mut r = Response::text(429, body);
            r.extra_headers
                .push(("retry-after", retry_after_secs(inner).to_string()));
            r
        }
        CancelReason::Disconnected => {
            inner.metrics.record_cancelled_disconnect();
            Response::text(499, body)
        }
        CancelReason::Shutdown => Response::text(503, body),
    };
    response
        .extra_headers
        .push(("x-ermes-progress", format!("{completed}/{total}")));
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_lru_shares_and_evicts_by_recency() {
        let mut lru = CacheLru::new(2, 16);
        let a1 = lru.get("a");
        let a2 = lru.get("a");
        assert!(Arc::ptr_eq(&a1, &a2), "same design shares one cache");
        let _b = lru.get("b");
        let _a3 = lru.get("a"); // touch a, so b is now the oldest
        let _c = lru.get("c"); // evicts b
        assert!(lru.entries.contains_key("a"));
        assert!(lru.entries.contains_key("c"));
        assert!(!lru.entries.contains_key("b"), "LRU victim is b");
        let a4 = lru.get("a");
        assert!(Arc::ptr_eq(&a1, &a4), "survivor keeps its warmth");
    }

    #[test]
    fn cache_lru_aggregates_stats_over_live_caches() {
        let mut lru = CacheLru::new(4, 16);
        let spec = SystemSpec::from_json(
            r#"{
                "processes": [
                    {"name": "a", "latency": 2},
                    {"name": "b", "latency": 3}
                ],
                "channels": [
                    {"name": "f", "from": "a", "to": "b", "latency": 1},
                    {"name": "r", "from": "b", "to": "a", "latency": 1, "initial_tokens": 1}
                ]
            }"#,
        )
        .expect("valid");
        let design = spec.to_design().expect("valid");
        let cache = lru.get("x");
        cache.analyze(&design, 1);
        cache.analyze(&design, 1);
        let (stats, entries) = lru.aggregate();
        assert_eq!(stats.analysis_misses, 1);
        assert_eq!(stats.analysis_hits, 1);
        assert_eq!(entries, 1);
    }

    #[test]
    fn retry_after_scales_with_backlog() {
        assert_eq!(retry_after_from(0, 0, 4), 1, "idle server says 1");
        assert_eq!(retry_after_from(1, 1, 1), 2);
        assert_eq!(retry_after_from(8, 2, 2), 5);
        assert_eq!(retry_after_from(7, 1, 2), 4, "rounds up");
        assert_eq!(retry_after_from(1000, 16, 4), 30, "clamped at 30");
        assert_eq!(retry_after_from(3, 1, 0), 4, "zero workers treated as one");
    }

    #[test]
    fn deadline_zero_means_none() {
        let req = Request {
            method: "POST".into(),
            path: "/analyze".into(),
            query: vec![("deadline_ms".into(), "0".into())],
            headers: Vec::new(),
            body: Vec::new(),
        };
        let params = AnalysisParams::from_request(&req, "analyze", 500).expect("valid");
        assert!(params.deadline.is_none(), "explicit 0 disables the default");
    }

    #[test]
    fn bad_query_parameters_are_structured_errors() {
        let mut req = Request {
            method: "POST".into(),
            path: "/explore".into(),
            query: vec![("target".into(), "soon".into())],
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert!(AnalysisParams::from_request(&req, "explore", 0).is_err());
        req.query = vec![("target".into(), "10".into()), ("jobs".into(), "-2".into())];
        assert!(AnalysisParams::from_request(&req, "explore", 0).is_err());
        req.query = vec![("target".into(), "10".into())];
        assert!(AnalysisParams::from_request(&req, "explore", 0).is_ok());
    }
}
