//! The CLI commands, as testable functions returning their output text.

use crate::json::JsonError;
use crate::spec::{SpecError, SystemSpec};
use ermes::ExplorationConfig;
use std::fmt::Write as _;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The spec file could not be interpreted.
    Spec(SpecError),
    /// The JSON payload is malformed.
    Json(JsonError),
    /// The methodology failed (deadlock, solver failure).
    Ermes(ermes::ErmesError),
    /// The command references something the spec does not contain.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Spec(e) => write!(f, "spec error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Ermes(e) => write!(f, "methodology error: {e}"),
            CliError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::Spec(e)
    }
}

impl From<JsonError> for CliError {
    fn from(e: JsonError) -> Self {
        CliError::Json(e)
    }
}

impl From<ermes::ErmesError> for CliError {
    fn from(e: ermes::ErmesError) -> Self {
        CliError::Ermes(e)
    }
}

/// Parses a spec from JSON text.
///
/// # Errors
///
/// [`CliError::Json`] on malformed JSON.
///
/// # Panics
///
/// Only under an active fault plan naming `json.parse` (chaos testing).
pub fn parse_spec(json: &str) -> Result<SystemSpec, CliError> {
    let _ = parx::faultpoint::hit("json.parse");
    Ok(SystemSpec::from_json(json)?)
}

/// Maps a [`parx::Cancelled`] poll result into the structured
/// [`ermes::ErmesError::Cancelled`] with partial-progress metadata.
fn cancelled(err: parx::Cancelled, completed: usize, total: usize) -> CliError {
    CliError::Ermes(ermes::ErmesError::Cancelled {
        reason: err.reason,
        completed,
        total,
    })
}

/// `ermes analyze <spec>` — cycle time, throughput, critical cycle.
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_analyze(spec: &SystemSpec) -> Result<String, CliError> {
    let design = spec.to_design()?;
    let report = ermes::analyze_design(&design);
    render_analysis(&design, &report)
}

/// [`cmd_analyze`] through a shared [`ermes::EngineCache`] (the daemon's
/// path). The output is bit-identical to [`cmd_analyze`] — the cached
/// computation is deterministic and the analysis report carries no
/// run-history state.
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_analyze_cached(
    spec: &SystemSpec,
    cache: &ermes::EngineCache,
) -> Result<String, CliError> {
    let design = spec.to_design()?;
    let report = cache.analyze(&design, 1);
    render_analysis(&design, &report)
}

/// [`cmd_analyze_cached`] polling a [`parx::CancelToken`] at analysis
/// iteration boundaries. With a live token the output is bit-identical
/// to [`cmd_analyze_cached`].
///
/// # Errors
///
/// [`CliError`] on malformed specs; [`ermes::ErmesError::Cancelled`]
/// (wrapped) when the token fires mid-analysis.
pub fn cmd_analyze_cancellable(
    spec: &SystemSpec,
    cache: &ermes::EngineCache,
    cancel: &parx::CancelToken,
) -> Result<String, CliError> {
    let design = spec.to_design()?;
    let report = cache
        .analyze_cancellable(&design, 1, cancel)
        .map_err(|e| cancelled(e, 0, 1))?;
    render_analysis(&design, &report)
}

fn render_analysis(design: &ermes::Design, report: &ermes::PerfReport) -> Result<String, CliError> {
    Ok(render_report(design, report, None))
}

/// Renders a session's cached analysis — byte-identical to
/// [`cmd_analyze`] on a spec capturing the session's current design,
/// without re-running any analysis: the lowered TMG and the bottleneck
/// diagnosis come from the [`ermes::DeltaState`] itself.
#[must_use]
pub fn render_session_report(state: &ermes::DeltaState) -> String {
    render_report(state.design(), state.report(), Some(state))
}

/// The one `analyze` response composition. `session` supplies the
/// cached lowering and bottleneck state on the stateful path; the
/// stateless path recomputes both (the bit-identity contract between
/// the two rests on this being a single function).
fn render_report(
    design: &ermes::Design,
    report: &ermes::PerfReport,
    session: Option<&ermes::DeltaState>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "processes: {}  channels: {}  area: {:.4}",
        design.system().process_count(),
        design.system().channel_count(),
        design.area()
    );
    match report.cycle_time() {
        None => {
            let _ = writeln!(out, "verdict: DEADLOCK");
            if let tmg::Verdict::Deadlock { witness } = &report.verdict {
                let fresh;
                let lowered = match session {
                    Some(s) => s.lowered(),
                    None => {
                        fresh = sysgraph::lower_to_tmg(design.system());
                        &fresh
                    }
                };
                let _ = writeln!(out, "token-free cycle ({} places):", witness.len());
                for p in witness {
                    let place = lowered.tmg().place(*p);
                    let _ = writeln!(
                        out,
                        "  {} -> {}",
                        lowered.tmg().transition(place.producer()).name(),
                        lowered.tmg().transition(place.consumer()).name()
                    );
                }
            }
        }
        Some(ct) => {
            let _ = writeln!(out, "verdict: live");
            let _ = writeln!(out, "cycle time: {ct} cycles");
            if let Some(tp) = report.verdict.throughput() {
                let _ = writeln!(out, "throughput: {tp} items/cycle");
            }
            let names: Vec<&str> = report
                .critical_processes
                .iter()
                .map(|&p| design.system().process(p).name())
                .collect();
            let _ = writeln!(out, "critical processes: {names:?}");
            let bottleneck = match session {
                Some(s) => s.bottleneck(),
                None => ermes::bottleneck_report(design),
            };
            if let Some(bottleneck) = bottleneck {
                let _ = write!(out, "{}", bottleneck.render());
            }
        }
    }
    out
}

/// `ermes verify <spec>` — formal deadlock-freedom certification with
/// the exact steady-state period, cross-checked against Howard's cycle
/// ratio on the lowered TMG (the two must agree to `f64` bit identity).
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_verify(spec: &SystemSpec) -> Result<String, CliError> {
    let sys = spec.to_system()?;
    render_verify_system(&sys, None)
}

/// [`cmd_verify`] polling a [`parx::CancelToken`] inside both the state
/// search and the cross-check. With a live token the output is
/// bit-identical to [`cmd_verify`].
///
/// # Errors
///
/// [`CliError`] on malformed specs; [`ermes::ErmesError::Cancelled`]
/// (wrapped) when the token fires mid-verification.
pub fn cmd_verify_cancellable(
    spec: &SystemSpec,
    cancel: &parx::CancelToken,
) -> Result<String, CliError> {
    let sys = spec.to_system()?;
    render_verify_system(&sys, Some(cancel))
}

/// The one `verify` response composition, shared by the stateless
/// command and the session endpoint (which verifies its live design
/// directly). Progress metadata on cancellation counts two steps: the
/// certifier itself, then the Howard cross-check.
///
/// # Errors
///
/// [`ermes::ErmesError::Cancelled`] (wrapped) when `cancel` fires.
pub fn render_verify_system(
    sys: &sysgraph::SystemGraph,
    cancel: Option<&parx::CancelToken>,
) -> Result<String, CliError> {
    let report = verify::verify_system(sys, &verify::VerifyConfig::default(), cancel)
        .map_err(|e| cancelled(e, 0, 2))?;
    let lowered = sysgraph::lower_to_tmg(sys);
    let howard = match cancel {
        Some(token) => {
            tmg::analyze_with_cancel(lowered.tmg(), 1, token).map_err(|e| cancelled(e, 1, 2))?
        }
        None => tmg::analyze(lowered.tmg()),
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "processes: {}  channels: {}  components: {}",
        report.processes, report.channels, report.components
    );
    if report.statics.is_clean() {
        let _ = writeln!(out, "static analysis: clean");
    } else {
        let _ = writeln!(
            out,
            "static analysis: {} finding(s)",
            report.statics.findings.len()
        );
        for finding in &report.statics.findings {
            let _ = writeln!(out, "  - {finding}");
        }
    }
    match &report.verdict {
        verify::VerifyVerdict::Certified {
            method,
            states,
            period,
            ..
        } => {
            let _ = writeln!(
                out,
                "verdict: CERTIFIED deadlock-free ({}, {} states)",
                method.name(),
                states
            );
            match period {
                Some(period) => {
                    let _ = writeln!(out, "period: {period} cycles (exact)");
                }
                None => {
                    let _ = writeln!(out, "period: unavailable (recurrence budget exhausted)");
                }
            }
            match howard.cycle_time() {
                Some(reference) => {
                    let identical = *period == Some(reference)
                        && period
                            .is_some_and(|p| p.to_f64().to_bits() == reference.to_f64().to_bits());
                    if identical {
                        let _ = writeln!(
                            out,
                            "cross-check: howard cycle time {reference} — f64 bit-identical"
                        );
                    } else if period.is_none() {
                        let _ = writeln!(out, "cross-check: howard cycle time {reference}");
                    } else {
                        let _ = writeln!(
                            out,
                            "cross-check: MISMATCH — howard says {reference}, verify says {:?}",
                            period.map(|p| p.to_string())
                        );
                    }
                }
                None => {
                    let _ = writeln!(
                        out,
                        "cross-check: MISMATCH — howard says DEADLOCK, verify certified"
                    );
                }
            }
        }
        verify::VerifyVerdict::Refuted {
            processes,
            cycle,
            trace,
            blocked,
        } => {
            let _ = writeln!(
                out,
                "verdict: REFUTED — deadlock in component {processes:?}"
            );
            let _ = writeln!(out, "token-free cycle ({} ops):", cycle.len());
            for line in cycle {
                let _ = writeln!(out, "  {line}");
            }
            if trace.is_empty() {
                let _ = writeln!(
                    out,
                    "counterexample: blocked from reset (no step completes)"
                );
            } else {
                let _ = writeln!(out, "counterexample trace ({} steps):", trace.len());
                for line in trace {
                    let _ = writeln!(out, "  {line}");
                }
            }
            if !blocked.is_empty() {
                let _ = writeln!(out, "blocked operations:");
                for line in blocked {
                    let _ = writeln!(out, "  {line}");
                }
            }
            if howard.is_deadlock() {
                let _ = writeln!(out, "cross-check: howard agrees (DEADLOCK)");
            } else {
                let _ = writeln!(
                    out,
                    "cross-check: MISMATCH — howard says live, verify refuted"
                );
            }
        }
        verify::VerifyVerdict::Unknown { reason, states } => {
            let _ = writeln!(out, "verdict: UNKNOWN — {reason} ({states} states)");
        }
    }
    Ok(out)
}

/// `ermes order <spec>` — run Algorithm 1 and return the report plus the
/// updated spec JSON (with explicit statement orders).
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_order(spec: &SystemSpec) -> Result<(String, String), CliError> {
    let sys = spec.to_system()?;
    let before = tmg::analyze(sysgraph::lower_to_tmg(&sys).tmg());
    let solution = chanorder::order_channels(&sys);
    let mut ordered = sys.clone();
    solution
        .ordering
        .apply_to(&mut ordered)
        .map_err(|_| CliError::Usage("ordering failed to apply".into()))?;
    let after = tmg::analyze(sysgraph::lower_to_tmg(&ordered).tmg());
    let mut out = String::new();
    let fmt_verdict = |v: &tmg::Verdict| match v.cycle_time() {
        Some(ct) => format!("live, cycle time {ct}"),
        None => "DEADLOCK".to_string(),
    };
    let _ = writeln!(out, "before: {}", fmt_verdict(&before));
    let _ = writeln!(out, "after : {}", fmt_verdict(&after));
    let new_spec = spec.with_system_state(&ordered);
    Ok((out, new_spec.to_json_pretty()))
}

/// `ermes explore <spec> --target <cycles> [--jobs <n>]` — the Fig. 5
/// loop. `jobs` threads the cycle-time analysis (`0` = all hardware
/// threads); the trace is bit-identical at any value.
///
/// # Errors
///
/// [`CliError`] on malformed specs or a deadlocking system.
pub fn cmd_explore(
    spec: &SystemSpec,
    target: u64,
    jobs: usize,
) -> Result<(String, String), CliError> {
    let cache = ermes::EngineCache::new();
    let (mut out, json) = cmd_explore_cached(spec, target, jobs, &cache)?;
    out.push_str(&cache_stats_line(&cache.stats()));
    Ok((out, json))
}

/// [`cmd_explore`] through a shared [`ermes::EngineCache`], without the
/// trailing per-run cache-statistics line (which would vary with the
/// cache's warmth and so cannot appear in a bit-stable daemon response;
/// the daemon serves those counters, aggregated, at `GET /metrics`).
///
/// # Errors
///
/// [`CliError`] on malformed specs or a deadlocking system.
pub fn cmd_explore_cached(
    spec: &SystemSpec,
    target: u64,
    jobs: usize,
    cache: &ermes::EngineCache,
) -> Result<(String, String), CliError> {
    explore_inner(spec, target, jobs, cache, None)
}

/// [`cmd_explore_cached`] polling a [`parx::CancelToken`] at exploration
/// iteration boundaries (and inside each cycle-time analysis). With a
/// live token the output is bit-identical to [`cmd_explore_cached`].
///
/// # Errors
///
/// [`CliError`] on malformed specs, a deadlocking system, or a fired
/// token ([`ermes::ErmesError::Cancelled`] with progress metadata).
pub fn cmd_explore_cancellable(
    spec: &SystemSpec,
    target: u64,
    jobs: usize,
    cache: &ermes::EngineCache,
    cancel: &parx::CancelToken,
) -> Result<(String, String), CliError> {
    explore_inner(spec, target, jobs, cache, Some(cancel))
}

fn explore_inner(
    spec: &SystemSpec,
    target: u64,
    jobs: usize,
    cache: &ermes::EngineCache,
    cancel: Option<&parx::CancelToken>,
) -> Result<(String, String), CliError> {
    let design = spec.to_design()?;
    let options = ermes::ExploreOptions {
        jobs,
        cache: Some(cache),
        cancel,
    };
    let trace = ermes::explore_with(design, ExplorationConfig::with_target(target), &options)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "iter  action                cycle-time      area  meets"
    );
    for r in &trace.iterations {
        let _ = writeln!(
            out,
            "{:>4}  {:<20} {:>11} {:>9.4}  {}",
            r.index,
            format!("{:?}", r.action),
            r.cycle_time.to_string(),
            r.area,
            if r.meets_target { "yes" } else { "no" }
        );
    }
    let _ = writeln!(
        out,
        "best: iteration {} (cycle time {}, area {:.4})",
        trace.best_index,
        trace.best().cycle_time,
        trace.best().area
    );
    let new_spec = spec.with_system_state(trace.design.system());
    Ok((out, new_spec.to_json_pretty()))
}

/// The CLI's per-run cache-statistics footer.
fn cache_stats_line(stats: &ermes::CacheStats) -> String {
    format!(
        "cache: analysis {}/{} hits ({:.0}%), ordering {}/{} hits ({:.0}%)\n",
        stats.analysis_hits,
        stats.analysis_hits + stats.analysis_misses,
        stats.analysis_hit_rate() * 100.0,
        stats.ordering_hits,
        stats.ordering_hits + stats.ordering_misses,
        stats.ordering_hit_rate() * 100.0,
    )
}

/// `ermes simulate <spec> --iterations <n> [--vcd <file>]` —
/// cycle-accurate execution, optionally dumping a channel-activity
/// waveform. Returns `(report, vcd_document)`.
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_simulate(spec: &SystemSpec, iterations: u64) -> Result<String, CliError> {
    Ok(cmd_simulate_traced(spec, iterations, false)?.0)
}

/// [`cmd_simulate`] with waveform capture: the second element is the VCD
/// document when `trace` is set (empty otherwise).
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_simulate_traced(
    spec: &SystemSpec,
    iterations: u64,
    trace: bool,
) -> Result<(String, String), CliError> {
    let sys = spec.to_system()?;
    let kernels: Vec<Box<dyn pnsim::Kernel<u8>>> = sys
        .process_ids()
        .map(|p| {
            Box::new(pnsim::FixedLatency::new(
                sys.process(p).latency(),
                sys.put_order(p).len(),
                0u8,
            )) as Box<dyn pnsim::Kernel<u8>>
        })
        .collect();
    let (outcome, _) = pnsim::run(
        &sys,
        kernels,
        pnsim::SimConfig {
            max_iterations: Some(iterations),
            record_sink_inputs: false,
            record_transfers: trace,
            ..pnsim::SimConfig::default()
        },
    );
    let mut out = String::new();
    if outcome.deadlocked {
        let _ = writeln!(out, "execution DEADLOCKED at cycle {}", outcome.time);
    } else {
        let _ = writeln!(out, "ran to cycle {}", outcome.time);
        if let Some(ct) = outcome.estimated_cycle_time() {
            let _ = writeln!(out, "steady-state cycle time: {ct:.2}");
        }
    }
    let vcd = if trace {
        pnsim::transfers_to_vcd(&sys, &outcome.transfers)
    } else {
        String::new()
    };
    Ok((out, vcd))
}

/// `ermes buffers <spec> --target <cycles> --budget <slots>` — FIFO
/// sizing (the Section 7 extension).
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_buffers(spec: &SystemSpec, target: u64, budget: u64) -> Result<String, CliError> {
    let design = spec.to_design()?;
    let before = ermes::analyze_design(&design)
        .cycle_time()
        .ok_or_else(|| CliError::Usage("system deadlocks; run `order` first".into()))?;
    let (sized, assignments) = ermes::size_buffers(design, target, budget);
    let after = ermes::analyze_design(&sized)
        .cycle_time()
        .expect("buffering cannot deadlock a live system");
    let mut out = String::new();
    let _ = writeln!(out, "cycle time: {before} -> {after}");
    if assignments.is_empty() {
        let _ = writeln!(out, "no profitable buffer found");
    }
    for (c, depth) in assignments {
        let _ = writeln!(
            out,
            "deepen channel `{}` to {} slots",
            sized.system().channel(c).name(),
            depth
        );
    }
    Ok(out)
}

/// `ermes refine <spec> [--passes <n>]` — Algorithm 1 followed by
/// local-search refinement; returns the report plus the refined spec.
///
/// # Errors
///
/// [`CliError`] on malformed or deadlocking specs.
pub fn cmd_refine(spec: &SystemSpec, passes: usize) -> Result<(String, String), CliError> {
    let sys = spec.to_system()?;
    let solution = chanorder::order_channels(&sys);
    let base = chanorder::cycle_time_of(&sys, &solution.ordering)
        .map_err(|_| CliError::Usage("ordering failed to apply".into()))?
        .cycle_time()
        .ok_or_else(|| CliError::Usage("system deadlocks under the computed order".into()))?;
    let refined = chanorder::refine_ordering(
        &sys,
        &solution.ordering,
        chanorder::RefineConfig { max_passes: passes },
    );
    let mut out = String::new();
    let _ = writeln!(out, "algorithm: cycle time {base}");
    let _ = writeln!(
        out,
        "refined  : cycle time {} ({} improving move(s))",
        refined.cycle_time, refined.moves
    );
    let mut best = sys.clone();
    refined
        .ordering
        .apply_to(&mut best)
        .map_err(|_| CliError::Usage("refined ordering failed to apply".into()))?;
    Ok((out, spec.with_system_state(&best).to_json_pretty()))
}

/// `ermes sweep <spec> --targets a,b,c [--jobs <n>]` — the system-level
/// Pareto front. The target ladder runs on up to `jobs` worker threads
/// (`0` = all hardware threads) over one shared memoization cache; the
/// front is bit-identical at any value.
///
/// # Errors
///
/// [`CliError`] on malformed specs or exploration failure.
pub fn cmd_sweep(spec: &SystemSpec, targets: &[u64], jobs: usize) -> Result<String, CliError> {
    let cache = ermes::EngineCache::new();
    let mut out = cmd_sweep_cached(spec, targets, jobs, &cache)?;
    out.push_str(&cache_stats_line(&cache.stats()));
    Ok(out)
}

/// [`cmd_sweep`] through a shared [`ermes::EngineCache`], without the
/// trailing cache-statistics line (see [`cmd_explore_cached`] for why).
///
/// # Errors
///
/// [`CliError`] on malformed specs or exploration failure.
pub fn cmd_sweep_cached(
    spec: &SystemSpec,
    targets: &[u64],
    jobs: usize,
    cache: &ermes::EngineCache,
) -> Result<String, CliError> {
    sweep_inner(spec, targets, jobs, cache, None)
}

/// [`cmd_sweep_cached`] polling a [`parx::CancelToken`]; cancellation
/// progress counts completed targets in ladder order. With a live token
/// the output is bit-identical to [`cmd_sweep_cached`].
///
/// # Errors
///
/// [`CliError`] on malformed specs, exploration failure, or a fired
/// token ([`ermes::ErmesError::Cancelled`] with progress metadata).
pub fn cmd_sweep_cancellable(
    spec: &SystemSpec,
    targets: &[u64],
    jobs: usize,
    cache: &ermes::EngineCache,
    cancel: &parx::CancelToken,
) -> Result<String, CliError> {
    sweep_inner(spec, targets, jobs, cache, Some(cancel))
}

fn sweep_inner(
    spec: &SystemSpec,
    targets: &[u64],
    jobs: usize,
    cache: &ermes::EngineCache,
    cancel: Option<&parx::CancelToken>,
) -> Result<String, CliError> {
    let design = spec.to_design()?;
    let options = ermes::SweepOptions {
        jobs,
        memoize: true,
    };
    let report = match cancel {
        Some(token) => ermes::pareto_sweep_cancellable(design, targets, &options, cache, token)?,
        None => ermes::pareto_sweep_cached(design, targets, &options, cache)?,
    };
    Ok(render_sweep_front(&report.front))
}

/// Renders a pruned sweep front as the `ermes sweep` table. This is the
/// single serialization point for sweep results: the CLI, the daemon's
/// `/sweep`, and the cluster coordinator reassembling remotely computed
/// points all call it, which is what makes their bytes identical.
#[must_use]
pub fn render_sweep_front(front: &[ermes::SweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "target        best-ct        area  meets");
    for p in front {
        let _ = writeln!(
            out,
            "{:>9} {:>12} {:>11.4}  {}",
            p.target_cycle_time,
            p.cycle_time.to_string(),
            p.area,
            if p.meets_target { "yes" } else { "no" }
        );
    }
    out
}

/// `ermes stalls <spec> --iterations <n>` — per-process stall statistics
/// from a cycle-accurate run (Section 2's "cycles spent waiting").
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_stalls(spec: &SystemSpec, iterations: u64) -> Result<String, CliError> {
    let sys = spec.to_system()?;
    let outcome = pnsim::simulate_timing(&sys, iterations);
    let mut out = String::new();
    if outcome.deadlocked {
        let _ = writeln!(out, "execution DEADLOCKED at cycle {}", outcome.time);
        return Ok(out);
    }
    let _ = writeln!(out, "process               iters     busy    stall  stall%");
    for s in pnsim::stall_report(&sys, &outcome) {
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>8} {:>8}  {:>5.1}%",
            sys.process(s.process).name(),
            s.iterations,
            s.busy_cycles,
            s.stall_cycles,
            s.stall_fraction * 100.0
        );
    }
    Ok(out)
}

/// `ermes dot <spec>` — Graphviz export.
///
/// # Errors
///
/// [`CliError`] on malformed specs.
pub fn cmd_dot(spec: &SystemSpec) -> Result<String, CliError> {
    Ok(sysgraph::to_dot(&spec.to_system()?))
}

/// `ermes fsm <spec> <process>` — the Fig. 2(b) FSM of one process.
///
/// # Errors
///
/// [`CliError::Usage`] if the process does not exist.
pub fn cmd_fsm(spec: &SystemSpec, process: &str) -> Result<String, CliError> {
    let sys = spec.to_system()?;
    let pid = sys
        .process_ids()
        .find(|&p| sys.process(p).name() == process)
        .ok_or_else(|| CliError::Usage(format!("no process named `{process}`")))?;
    Ok(pnsim::process_fsm(&sys, pid).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "processes": [
            {"name": "src", "latency": 1},
            {"name": "worker", "latency": 6,
             "pareto": [{"latency": 3, "area": 2.0}, {"latency": 6, "area": 1.0}]},
            {"name": "snk", "latency": 1}
        ],
        "channels": [
            {"name": "in", "from": "src", "to": "worker", "latency": 1},
            {"name": "out", "from": "worker", "to": "snk", "latency": 1}
        ]
    }"#;

    #[test]
    fn analyze_reports_cycle_time() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let out = cmd_analyze(&spec).expect("analyzes");
        assert!(out.contains("verdict: live"));
        assert!(out.contains("cycle time: 8 cycles"));
        assert!(out.contains("worker"));
    }

    #[test]
    fn verify_certifies_live_specs_with_bit_identical_period() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let out = cmd_verify(&spec).expect("verifies");
        assert!(out.contains("verdict: CERTIFIED deadlock-free"), "{out}");
        assert!(out.contains("period: 8 cycles (exact)"), "{out}");
        assert!(
            out.contains("cross-check: howard cycle time 8 — f64 bit-identical"),
            "{out}"
        );
        assert!(out.contains("static analysis: clean"), "{out}");
    }

    #[test]
    fn verify_refutes_a_starved_loop_with_a_witness() {
        let spec = parse_spec(
            r#"{
                "processes": [
                    {"name": "a", "latency": 2},
                    {"name": "b", "latency": 3}
                ],
                "channels": [
                    {"name": "fwd", "from": "a", "to": "b", "latency": 1},
                    {"name": "fb", "from": "b", "to": "a", "latency": 1}
                ]
            }"#,
        )
        .expect("valid");
        let out = cmd_verify(&spec).expect("renders");
        assert!(out.contains("verdict: REFUTED"), "{out}");
        assert!(out.contains("token-free cycle"), "{out}");
        assert!(
            out.contains("cross-check: howard agrees (DEADLOCK)"),
            "{out}"
        );
        assert!(out.contains("starved channel cycle"), "{out}");
    }

    #[test]
    fn verify_cancellable_is_bit_identical_with_a_live_token() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let token = parx::CancelToken::new();
        let plain = cmd_verify(&spec).expect("verifies");
        let cancellable = cmd_verify_cancellable(&spec, &token).expect("verifies");
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn verify_cancelled_token_maps_to_structured_error() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let token = parx::CancelToken::new();
        token.cancel(parx::CancelReason::Shutdown);
        let err = cmd_verify_cancellable(&spec, &token).expect_err("cancelled");
        assert!(matches!(
            err,
            CliError::Ermes(ermes::ErmesError::Cancelled { .. })
        ));
    }

    #[test]
    fn order_roundtrips_spec() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let (report, json) = cmd_order(&spec).expect("orders");
        assert!(report.contains("after : live"));
        let reparsed = parse_spec(&json).expect("output is valid json");
        assert!(reparsed.processes[1].get_order.is_some());
    }

    #[test]
    fn explore_meets_easy_target() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let (report, json) = cmd_explore(&spec, 6, 1).expect("explores");
        assert!(report.contains("best: iteration"));
        assert!(report.contains("cache:"), "{report}");
        let reparsed = parse_spec(&json).expect("valid json");
        // The worker must have switched to its fast implementation.
        assert_eq!(reparsed.processes[1].latency, 3);
    }

    #[test]
    fn simulate_matches_analysis() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let out = cmd_simulate(&spec, 200).expect("simulates");
        assert!(out.contains("steady-state cycle time: 8.00"), "{out}");
    }

    #[test]
    fn simulate_traced_produces_vcd() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let (report, vcd) = cmd_simulate_traced(&spec, 50, true).expect("simulates");
        assert!(report.contains("steady-state"));
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 1"));
    }

    #[test]
    fn fsm_prints_and_unknown_process_errors() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let out = cmd_fsm(&spec, "worker").expect("exists");
        assert!(out.contains("FSM of worker"));
        assert!(cmd_fsm(&spec, "ghost").is_err());
    }

    #[test]
    fn refine_never_regresses() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let (report, json) = cmd_refine(&spec, 4).expect("refines");
        assert!(report.contains("algorithm: cycle time"));
        assert!(parse_spec(&json).is_ok());
    }

    #[test]
    fn sweep_renders_a_front() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let out = cmd_sweep(&spec, &[5, 10, 100], 1).expect("sweeps");
        assert!(out.contains("best-ct"), "{out}");
        assert!(out.contains("cache:"), "{out}");
    }

    #[test]
    fn sweep_is_identical_at_any_job_count() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let serial = cmd_sweep(&spec, &[5, 10, 100], 1).expect("sweeps");
        for jobs in [2, 4, 0] {
            let parallel = cmd_sweep(&spec, &[5, 10, 100], jobs).expect("sweeps");
            // Compare the front only — cache counters may differ when
            // parallel workers race on the same missing entry.
            let table = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("cache:"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(table(&parallel), table(&serial), "jobs = {jobs}");
        }
    }

    #[test]
    fn analyze_includes_bottleneck_diagnosis() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let out = cmd_analyze(&spec).expect("analyzes");
        assert!(out.contains("critical cycle:"), "{out}");
    }

    #[test]
    fn stalls_reports_every_process() {
        let spec = parse_spec(SAMPLE).expect("valid");
        let out = cmd_stalls(&spec, 100).expect("simulates");
        assert!(out.contains("worker"));
        assert!(out.contains("stall%"));
    }

    #[test]
    fn dot_contains_graph() {
        let spec = parse_spec(SAMPLE).expect("valid");
        assert!(cmd_dot(&spec).expect("renders").contains("digraph"));
    }

    #[test]
    fn buffers_reports_on_loop_systems() {
        let spec = parse_spec(
            r#"{
                "processes": [
                    {"name": "a", "latency": 10},
                    {"name": "b", "latency": 10}
                ],
                "channels": [
                    {"name": "fwd", "from": "a", "to": "b", "latency": 1},
                    {"name": "fb", "from": "b", "to": "a", "latency": 1, "initial_tokens": 1}
                ]
            }"#,
        )
        .expect("valid");
        let out = cmd_buffers(&spec, 1, 4).expect("sizes");
        assert!(out.contains("->"), "{out}");
    }
}
