//! Property-based validation of the cycle-time analyses.
//!
//! These properties are the soundness argument for the crate: the two
//! independent exact solvers must agree on arbitrary graphs, and the
//! analytic cycle time must match what the earliest-firing-time execution
//! actually achieves — the claim at the heart of the paper's Section 3.

use proptest::prelude::*;
use tmg::{analyze, analyze_parametric, find_token_free_cycle, simulate, Tmg, TmgBuilder, Verdict};

/// Strategy: a random TMG built as a ring (guaranteeing strong
/// connectivity and at least one cycle) plus random chord places.
fn arb_ring_tmg() -> impl Strategy<Value = Tmg> {
    (
        2usize..8,
        proptest::collection::vec((0usize..8, 0usize..8, 0u64..6, 0u64..3), 0..10),
    )
        .prop_map(|(n, chords)| {
            let mut b = TmgBuilder::new();
            let ts: Vec<_> = (0..n)
                .map(|i| b.add_transition(format!("t{i}"), (i as u64 % 5) + 1))
                .collect();
            for i in 0..n {
                // One token on the ring so the base cycle is live.
                b.add_place(ts[i], ts[(i + 1) % n], u64::from(i == 0));
            }
            for (a, c, _delay, tokens) in chords {
                let a = a % n;
                let c = c % n;
                b.add_place(ts[a], ts[c], tokens);
            }
            b.build().expect("non-empty")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Howard's algorithm and the parametric solver are independent exact
    /// methods: they must produce identical verdicts.
    #[test]
    fn howard_agrees_with_parametric(g in arb_ring_tmg()) {
        let a = analyze(&g);
        let b = analyze_parametric(&g);
        prop_assert_eq!(a.is_deadlock(), b.is_deadlock());
        prop_assert_eq!(a.cycle_time(), b.cycle_time());
    }

    /// The critical cycle reported by the analysis achieves exactly the
    /// reported cycle time.
    #[test]
    fn critical_cycle_achieves_cycle_time(g in arb_ring_tmg()) {
        if let Verdict::Live { cycle_time, critical } = analyze(&g) {
            prop_assert!(critical.token_sum > 0);
            prop_assert_eq!(
                cycle_time,
                tmg::Ratio::new(critical.delay_sum as i64, critical.token_sum as i64)
            );
            // The witness is a closed walk.
            let k = critical.places.len();
            for i in 0..k {
                let p = critical.places[i];
                let q = critical.places[(i + 1) % k];
                prop_assert_eq!(g.place(p).consumer(), g.place(q).producer());
            }
        }
    }

    /// The deadlock verdict matches the structural token-free-cycle check
    /// and the executed token game.
    #[test]
    fn deadlock_verdict_matches_execution(g in arb_ring_tmg()) {
        let analytic = analyze(&g).is_deadlock();
        let structural = find_token_free_cycle(&g).is_some();
        prop_assert_eq!(analytic, structural);
        let run = simulate(&g, tmg::TransitionId::from_index(0), 50);
        if structural {
            // A token-free cycle always starves the execution eventually.
            prop_assert!(run.deadlocked);
        } else {
            prop_assert!(!run.deadlocked);
        }
    }

    /// On live strongly connected graphs the executed steady-state rate
    /// converges to the analytic cycle time.
    #[test]
    fn simulation_converges_to_analytic_cycle_time(g in arb_ring_tmg()) {
        if let Verdict::Live { cycle_time, .. } = analyze(&g) {
            if g.is_strongly_connected() {
                let run = simulate(&g, tmg::TransitionId::from_index(0), 600);
                let measured = run.estimated_cycle_time().expect("live run");
                let expected = cycle_time.to_f64();
                // Steady state is periodic; the long-horizon slope matches
                // within a small tolerance dominated by the transient.
                prop_assert!(
                    (measured - expected).abs() <= expected * 0.02 + 0.05,
                    "measured {} vs analytic {}", measured, expected
                );
            }
        }
    }

    /// Firing any enabled transition preserves per-cycle token counts:
    /// verified via the critical cycle before and after random firings.
    #[test]
    fn cycle_time_is_invariant_under_firing(g in arb_ring_tmg(), steps in 0usize..20) {
        // The initial marking analysis...
        let before = analyze(&g);
        // ...is unchanged by executing the token game, because cycle token
        // counts are invariant. We emulate this by firing `steps` enabled
        // transitions and re-deriving the marking-dependent deadlock check.
        let mut marking = g.initial_marking();
        for _ in 0..steps {
            let Some(t) = marking.enabled(&g).next() else { break };
            marking.fire(&g, t).expect("enabled");
        }
        // If the graph was live, it must still have an enabled transition
        // (no deadlock can appear in a live marked graph).
        if !before.is_deadlock() {
            prop_assert!(marking.enabled(&g).next().is_some());
        }
    }
}
