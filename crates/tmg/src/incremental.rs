//! Incremental (dirty-SCC) cycle-time analysis.
//!
//! A design-space exploration step edits one process at a time, but
//! [`analyze`](crate::analyze) recomputes everything from scratch: deadlock
//! check, ratio-graph lowering, SCC decomposition, and one Howard solve per
//! component. [`IncrementalAnalysis`] keeps all of that state alive between
//! edits and re-derives only what an edit can actually invalidate:
//!
//! - **Delay-only edits** ([`IncrementalAnalysis::reprice`]) — a process
//!   reselect changes transition delays but no structure. The deadlock
//!   witness (structure + tokens only), the ratio graph's shape, and the
//!   SCC decomposition all remain valid; only components containing an
//!   *internal* edge whose delay changed are re-solved. Cached cycle
//!   ratios of clean components are reused as-is.
//! - **Structural edits** ([`IncrementalAnalysis::rebuild`]) — a channel
//!   reorder rewires places, so deadlock/ratio-graph/SCCs are re-derived;
//!   per-component Howard results are still reused for any component whose
//!   member set and internal edges (indices, endpoints, weights) are
//!   unchanged.
//!
//! Every verdict produced this way is **bit-identical** to a from-scratch
//! [`analyze`](crate::analyze) of the same graph: clean components reuse
//! results a fresh solve would recompute from identical inputs with the
//! same deterministic algorithm, and dirty components run that very
//! algorithm. The differential test suite pins this equivalence.
//!
//! Cancellation is cooperative and leaves the state *resumable*: dirty
//! flags are only cleared after a component's re-solve completes, so a
//! cancelled [`reprice`](IncrementalAnalysis::reprice) can simply be
//! retried. A cancelled [`rebuild`](IncrementalAnalysis::rebuild) leaves
//! the previous state untouched (the new state is committed atomically at
//! the end); callers that already mutated their graph must retry the
//! rebuild before trusting [`verdict`](IncrementalAnalysis::verdict).

use crate::deadlock::find_token_free_cycle;
use crate::graph::Tmg;
use crate::howard::{howard_on_component_with, CycleRatioResult, HowardScratch};
use crate::ids::{PlaceId, TransitionId};
use crate::parametric::{find_any_cycle, max_cycle_ratio_parametric};
use crate::ratio_graph::RatioGraph;
use crate::scc::{tarjan, SccDecomposition, SccGroups};
use crate::Verdict;
use parx::{CancelToken, Cancelled};

/// Cached analysis state that tracks a [`Tmg`] across edits.
///
/// See the [module docs](self) for the invalidation model.
///
/// # Examples
///
/// ```
/// use tmg::{analyze, IncrementalAnalysis, TmgBuilder};
/// let mut b = TmgBuilder::new();
/// let a = b.add_transition("a", 3);
/// let c = b.add_transition("c", 2);
/// b.add_place(a, c, 1);
/// b.add_place(c, a, 0);
/// let mut g = b.build()?;
///
/// let mut inc = IncrementalAnalysis::new(&g);
/// assert_eq!(inc.verdict(), &analyze(&g));
///
/// // Speed up transition `a` and reprice: same verdict as re-analyzing.
/// g.set_transition_delay(a, 1);
/// inc.reprice(&g, &[a], None)?;
/// assert_eq!(inc.verdict(), &analyze(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct IncrementalAnalysis {
    rg: RatioGraph,
    scc: SccDecomposition,
    /// Flat (CSR) member grouping of the cached decomposition.
    components: SccGroups,
    /// Cached per-component Howard results, indexed like `components`.
    results: Vec<Option<CycleRatioResult>>,
    /// Components whose cached result is stale (set on edit, cleared only
    /// after a successful re-solve — the cancellation-resume invariant).
    dirty: Vec<bool>,
    /// Cached token-free-cycle witness; `Some` means the verdict is
    /// `Deadlock` and no ratio results are maintained.
    deadlock: Option<Vec<PlaceId>>,
    /// Whether the ratio graph has any cycle (structure-only; drives the
    /// parametric-fallback condition exactly as the one-shot analysis).
    has_cycle: bool,
    scratch: HowardScratch,
    verdict: Verdict,
}

impl IncrementalAnalysis {
    /// Analyzes `graph` from scratch and caches every intermediate result.
    ///
    /// The initial [`verdict`](Self::verdict) is bit-identical to
    /// [`analyze`](crate::analyze).
    #[must_use]
    pub fn new(graph: &Tmg) -> Self {
        Self::new_with_cancel(graph, None).expect("no cancel token, cannot be cancelled")
    }

    /// [`new`](Self::new), but cooperatively cancellable: the per-SCC
    /// Howard solves poll `cancel` between policy-improvement rounds.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token fired before the analysis finished.
    pub fn new_with_cancel(graph: &Tmg, cancel: Option<&CancelToken>) -> Result<Self, Cancelled> {
        let mut state = IncrementalAnalysis {
            rg: RatioGraph::default(),
            scc: SccDecomposition {
                component: Vec::new(),
                count: 0,
            },
            components: SccGroups::default(),
            results: Vec::new(),
            dirty: Vec::new(),
            deadlock: None,
            has_cycle: false,
            scratch: HowardScratch::new(),
            verdict: Verdict::Acyclic,
        };
        state.rebuild(graph, cancel)?;
        Ok(state)
    }

    /// The verdict for the last successfully analyzed graph state.
    #[must_use]
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// Number of strongly connected components in the cached decomposition
    /// (zero while the graph is deadlocked, since no ratio analysis runs).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Re-analyzes after a **delay-only** edit: the delays of `touched`
    /// transitions changed (to their current values in `graph`), but
    /// structure and tokens did not.
    ///
    /// Updates the affected ratio-graph edges in place, re-solves only the
    /// components with a changed internal edge, and rebuilds the verdict.
    /// Returns the number of components re-solved.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when `cancel` fired mid-solve. The state stays
    /// resumable: re-solved components keep their fresh results, pending
    /// ones stay dirty, and the next `reprice` (even with no new touched
    /// transitions) finishes the job.
    ///
    /// # Panics
    ///
    /// Panics if a touched transition is out of range for `graph`, or if
    /// `graph` structurally differs from the graph this state was built
    /// from (use [`rebuild`](Self::rebuild) for structural edits).
    pub fn reprice(
        &mut self,
        graph: &Tmg,
        touched: &[TransitionId],
        cancel: Option<&CancelToken>,
    ) -> Result<usize, Cancelled> {
        let _span = trace::span("reprice");
        assert_eq!(
            self.rg.edges.len(),
            graph.place_count(),
            "reprice requires an unchanged graph structure"
        );
        if self.deadlock.is_some() {
            // Deadlock depends on structure and tokens only; delay edits
            // cannot wake the system up, and no ratio state is cached.
            trace::attr("dirty", 0usize);
            return Ok(0);
        }
        // Edge index == place index (RatioGraph::from_tmg adds one edge per
        // place in id order), and each edge carries the delay of the
        // place's consumer: a touched transition perturbs exactly the
        // edges of its input places.
        for &t in touched {
            let delay = i64::try_from(graph.transition(t).delay()).expect("delay fits i64");
            for &p in graph.input_places(t) {
                let e = &mut self.rg.edges[p.index()];
                if e.delay != delay {
                    e.delay = delay;
                    // Only cycles see edge weights, and every cycle lies
                    // inside one SCC: cross-component edges can't affect
                    // any cached ratio.
                    let c_from = self.scc.component[e.from];
                    if c_from == self.scc.component[e.to] {
                        self.dirty[c_from] = true;
                    }
                }
            }
        }
        let resolved = self.solve_dirty(cancel)?;
        trace::attr("dirty", resolved);
        self.reduce(graph, cancel)?;
        Ok(resolved)
    }

    /// Re-analyzes after a **structural** edit (e.g. a channel reorder):
    /// re-derives the deadlock witness, the ratio graph, and the SCC
    /// decomposition from `graph`, reusing cached Howard results for every
    /// component whose members and internal edges are unchanged.
    ///
    /// The new state is committed atomically: on cancellation the previous
    /// state is left untouched, and the caller must retry before trusting
    /// [`verdict`](Self::verdict) again.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when `cancel` fired before the rebuild finished.
    pub fn rebuild(
        &mut self,
        graph: &Tmg,
        cancel: Option<&CancelToken>,
    ) -> Result<usize, Cancelled> {
        let _span = trace::span("rebuild");
        if let Some(witness) = find_token_free_cycle(graph) {
            self.verdict = Verdict::Deadlock {
                witness: witness.clone(),
            };
            self.deadlock = Some(witness);
            self.rg = RatioGraph::from_tmg(graph);
            self.components = SccGroups::default();
            self.results.clear();
            self.dirty.clear();
            self.scc = SccDecomposition {
                component: vec![0; self.rg.node_count],
                count: 0,
            };
            self.has_cycle = false;
            trace::attr("reused", 0usize);
            return Ok(0);
        }
        let rg = RatioGraph::from_tmg(graph);
        let scc = tarjan(&rg);
        let components = scc.groups();
        let has_cycle = find_any_cycle(&rg).is_some();

        let mut results: Vec<Option<CycleRatioResult>> = Vec::with_capacity(components.len());
        let mut reused = 0usize;
        let mut solved = 0usize;
        for i in 0..components.len() {
            let members = components.group(i);
            if let Some(old) = self.reusable_component(&rg, &scc, members) {
                results.push(self.results[old].clone());
                reused += 1;
                continue;
            }
            let r = {
                let _span = trace::span("howard");
                trace::attr("scc", i);
                trace::attr("nodes", members.len());
                howard_on_component_with(&mut self.scratch, &rg, &scc, members, cancel)?
            };
            results.push(r);
            solved += 1;
        }
        trace::attr("reused", reused);

        self.rg = rg;
        self.scc = scc;
        self.components = components;
        self.results = results;
        self.dirty = vec![false; self.components.len()];
        self.deadlock = None;
        self.has_cycle = has_cycle;
        self.reduce(graph, cancel)?;
        Ok(solved)
    }

    /// Finds a cached component equal to `members` under the new graph:
    /// same member list and identical internal edges (index, endpoints,
    /// delay, tokens, place). Such a component feeds the deterministic
    /// per-component solver the exact same input, so its cached result —
    /// including the witness's edge indices — is what a fresh solve would
    /// return.
    fn reusable_component(
        &self,
        rg: &RatioGraph,
        scc: &SccDecomposition,
        members: &[u32],
    ) -> Option<usize> {
        let &first = members.first()?;
        let first = first as usize;
        let old = *self.scc.component.get(first)?;
        if self.dirty.get(old).copied().unwrap_or(true) {
            return None;
        }
        if old >= self.components.len() || self.components.group(old) != members {
            return None;
        }
        if self.rg.node_count != rg.node_count || self.rg.edges.len() != rg.edges.len() {
            return None;
        }
        let comp = scc.component[first];
        let old_comp = self.scc.component[first];
        for (idx, e) in rg.edges.iter().enumerate() {
            let internal = scc.component[e.from] == comp && scc.component[e.to] == comp;
            let was = {
                let o = &self.rg.edges[idx];
                self.scc.component[o.from] == old_comp && self.scc.component[o.to] == old_comp
            };
            if internal != was {
                return None;
            }
            if internal && *e != self.rg.edges[idx] {
                return None;
            }
        }
        Some(old)
    }

    /// Re-solves every dirty component in component order, clearing each
    /// flag only once its solve completed. Returns how many were solved.
    fn solve_dirty(&mut self, cancel: Option<&CancelToken>) -> Result<usize, Cancelled> {
        let mut solved = 0usize;
        for i in 0..self.components.len() {
            if !self.dirty[i] {
                continue;
            }
            let r = {
                let _span = trace::span("howard");
                trace::attr("scc", i);
                trace::attr("nodes", self.components.group(i).len());
                howard_on_component_with(
                    &mut self.scratch,
                    &self.rg,
                    &self.scc,
                    self.components.group(i),
                    cancel,
                )?
            };
            self.results[i] = r;
            self.dirty[i] = false;
            solved += 1;
        }
        Ok(solved)
    }

    /// Replays the one-shot analysis's reduction over the cached
    /// per-component results — same component order, same strictly-greater
    /// comparison, same parametric-fallback condition — and rebuilds the
    /// verdict from the winning witness.
    fn reduce(&mut self, graph: &Tmg, cancel: Option<&CancelToken>) -> Result<(), Cancelled> {
        let mut best: Option<&CycleRatioResult> = None;
        for r in self.results.iter().flatten() {
            if best.is_none_or(|b| r.ratio > b.ratio) {
                best = Some(r);
            }
        }
        let mut owned_best: Option<CycleRatioResult> = best.cloned();
        if owned_best.is_none() && self.has_cycle {
            if let Some(token) = cancel {
                token.check()?;
            }
            owned_best = max_cycle_ratio_parametric(&self.rg);
        }
        self.verdict = match owned_best {
            None => Verdict::Acyclic,
            Some(result) => {
                let places: Vec<PlaceId> = result
                    .cycle_edges
                    .iter()
                    .map(|&e| self.rg.edges[e].place.expect("edge lowered from a place"))
                    .collect();
                let transitions: Vec<TransitionId> =
                    places.iter().map(|&p| graph.place(p).consumer()).collect();
                let delay_sum = transitions
                    .iter()
                    .map(|&t| graph.transition(t).delay())
                    .sum();
                let token_sum = places
                    .iter()
                    .map(|&p| graph.place(p).initial_tokens())
                    .sum();
                Verdict::Live {
                    cycle_time: result.ratio,
                    critical: crate::CriticalCycle {
                        places,
                        transitions,
                        delay_sum,
                        token_sum,
                    },
                }
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TmgBuilder;
    use crate::{analyze, Ratio};

    fn ring(delays: &[u64], tokens: &[u64]) -> (Tmg, Vec<TransitionId>) {
        let mut b = TmgBuilder::new();
        let ts: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| b.add_transition(format!("t{i}"), d))
            .collect();
        for i in 0..ts.len() {
            b.add_place(ts[i], ts[(i + 1) % ts.len()], tokens[i]);
        }
        (b.build().expect("valid"), ts)
    }

    #[test]
    fn initial_verdict_matches_analyze() {
        let (g, _) = ring(&[3, 2, 5], &[1, 0, 1]);
        let inc = IncrementalAnalysis::new(&g);
        assert_eq!(inc.verdict(), &analyze(&g));
    }

    #[test]
    fn reprice_matches_fresh_analysis() {
        let (mut g, ts) = ring(&[3, 2, 5], &[1, 0, 1]);
        let mut inc = IncrementalAnalysis::new(&g);
        for (t, d) in [(0, 9u64), (1, 1), (2, 2), (0, 3), (2, 40)] {
            g.set_transition_delay(ts[t], d);
            inc.reprice(&g, &[ts[t]], None).expect("not cancelled");
            assert_eq!(inc.verdict(), &analyze(&g), "after t{t} -> {d}");
        }
    }

    #[test]
    fn untouched_components_are_not_resolved() {
        // Two disjoint rings -> two SCCs. Editing one must re-solve one.
        let mut b = TmgBuilder::new();
        let a0 = b.add_transition("a0", 3);
        let a1 = b.add_transition("a1", 2);
        b.add_place(a0, a1, 1);
        b.add_place(a1, a0, 0);
        let c0 = b.add_transition("c0", 7);
        let c1 = b.add_transition("c1", 1);
        b.add_place(c0, c1, 1);
        b.add_place(c1, c0, 1);
        let mut g = b.build().expect("valid");
        let mut inc = IncrementalAnalysis::new(&g);
        assert_eq!(inc.component_count(), 2);

        g.set_transition_delay(a0, 11);
        let solved = inc.reprice(&g, &[a0], None).expect("not cancelled");
        assert_eq!(solved, 1, "only the edited ring re-solves");
        assert_eq!(inc.verdict(), &analyze(&g));

        // A no-op edit (same delay) re-solves nothing.
        let solved = inc.reprice(&g, &[a0], None).expect("not cancelled");
        assert_eq!(solved, 0);
        assert_eq!(inc.verdict(), &analyze(&g));
    }

    #[test]
    fn rebuild_reuses_unchanged_components() {
        let mut b = TmgBuilder::new();
        let a0 = b.add_transition("a0", 3);
        let a1 = b.add_transition("a1", 2);
        b.add_place(a0, a1, 1);
        b.add_place(a1, a0, 0);
        let c0 = b.add_transition("c0", 7);
        let c1 = b.add_transition("c1", 1);
        b.add_place(c0, c1, 1);
        b.add_place(c1, c0, 1);
        let mut g = b.build().expect("valid");
        let mut inc = IncrementalAnalysis::new(&g);

        // Delay edit routed through rebuild (as a structural edit would
        // be): the untouched ring's cached result is reused.
        g.set_transition_delay(c0, 9);
        let solved = inc.rebuild(&g, None).expect("not cancelled");
        assert_eq!(solved, 1, "one component changed, one reused");
        assert_eq!(inc.verdict(), &analyze(&g));
    }

    #[test]
    fn deadlocked_graph_stays_deadlocked_under_reprice() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        let c = b.add_transition("c", 1);
        b.add_place(a, c, 0);
        b.add_place(c, a, 0);
        let mut g = b.build().expect("valid");
        let mut inc = IncrementalAnalysis::new(&g);
        assert!(inc.verdict().is_deadlock());
        assert_eq!(inc.verdict(), &analyze(&g));
        g.set_transition_delay(a, 42);
        inc.reprice(&g, &[a], None).expect("not cancelled");
        assert!(inc.verdict().is_deadlock());
        assert_eq!(inc.verdict(), &analyze(&g));
    }

    #[test]
    fn cancelled_reprice_is_resumable() {
        use parx::{CancelReason, CancelToken};
        let (mut g, ts) = ring(&[3, 2, 5], &[1, 0, 1]);
        let mut inc = IncrementalAnalysis::new(&g);
        g.set_transition_delay(ts[0], 9);
        let token = CancelToken::new();
        token.cancel(CancelReason::Deadline);
        let err = inc
            .reprice(&g, &[ts[0]], Some(&token))
            .expect_err("token fired");
        assert_eq!(err.reason, CancelReason::Deadline);
        // Retry with a live token: the dirty flag survived, the verdict
        // catches up with no touched transitions passed at all.
        let solved = inc.reprice(&g, &[], None).expect("not cancelled");
        assert_eq!(solved, 1);
        assert_eq!(inc.verdict(), &analyze(&g));
    }

    #[test]
    fn reprice_tracks_exact_ratios() {
        let (mut g, ts) = ring(&[4, 0], &[2, 0]);
        let mut inc = IncrementalAnalysis::new(&g);
        assert_eq!(inc.verdict().cycle_time(), Some(Ratio::new(2, 1)));
        g.set_transition_delay(ts[1], 3);
        inc.reprice(&g, &[ts[1]], None).expect("not cancelled");
        assert_eq!(inc.verdict().cycle_time(), Some(Ratio::new(7, 2)));
        assert_eq!(inc.verdict(), &analyze(&g));
    }
}
