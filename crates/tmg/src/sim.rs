//! Timed execution of a marked graph — the simulation the analytic model
//! replaces.
//!
//! The paper's point is that the TMG model lets ERMES avoid lengthy
//! simulations; this module provides that simulation anyway, so the model
//! can be validated against it. It executes the earliest-firing-time
//! semantics: a transition starts as soon as one token is available on
//! every input place and deposits tokens on its outputs `delay` time units
//! later. For marked graphs this schedule is deterministic (confluent), and
//! the long-run interval between consecutive firings of any transition of a
//! strongly connected graph converges to the cycle time π(G).

use crate::graph::Tmg;
use crate::ids::TransitionId;
use std::collections::VecDeque;

/// Result of a timed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// Completed firing counts per transition (indexed by transition id).
    pub firings: Vec<u64>,
    /// Start time of every firing of the observed transition.
    pub observed_times: Vec<u64>,
    /// True if the run stopped because no transition could fire.
    pub deadlocked: bool,
}

impl SimulationOutcome {
    /// Estimates the steady-state cycle time from the observed firing
    /// times, discarding the first half of the run as transient:
    /// `(s_last − s_mid) / (last − mid)`.
    ///
    /// Returns `None` if fewer than four firings were observed or the run
    /// deadlocked.
    #[must_use]
    pub fn estimated_cycle_time(&self) -> Option<f64> {
        if self.deadlocked || self.observed_times.len() < 4 {
            return None;
        }
        let last = self.observed_times.len() - 1;
        let mid = last / 2;
        let dt = self.observed_times[last] - self.observed_times[mid];
        Some(dt as f64 / (last - mid) as f64)
    }
}

/// Executes the earliest-firing-time semantics until the observed
/// transition has fired `rounds` times (or deadlock).
///
/// # Panics
///
/// Panics if `observed` does not belong to `graph`.
///
/// # Examples
///
/// ```
/// use tmg::{TmgBuilder, simulate};
/// let mut b = TmgBuilder::new();
/// let a = b.add_transition("a", 3);
/// let c = b.add_transition("c", 2);
/// b.add_place(a, c, 1);
/// b.add_place(c, a, 0);
/// let g = b.build()?;
/// let run = simulate(&g, a, 100);
/// // One token around a delay-5 loop: one firing every 5 time units.
/// let ct = run.estimated_cycle_time().expect("live graph");
/// assert!((ct - 5.0).abs() < 1e-9);
/// # Ok::<(), tmg::TmgError>(())
/// ```
#[must_use]
pub fn simulate(graph: &Tmg, observed: TransitionId, rounds: u64) -> SimulationOutcome {
    assert!(
        observed.index() < graph.transition_count(),
        "observed transition out of range"
    );
    // Per-place FIFO of token availability times.
    let mut tokens: Vec<VecDeque<u64>> = graph
        .place_ids()
        .map(|p| (0..graph.place(p).initial_tokens()).map(|_| 0u64).collect())
        .collect();
    let mut firings = vec![0u64; graph.transition_count()];
    let mut observed_times = Vec::new();

    // Worklist of transitions that may be enabled. Earliest-firing order
    // does not matter for the final schedule of a marked graph (confluence),
    // so a simple FIFO sweep is sufficient; firing start times are computed
    // from token availability, not from processing order.
    let mut queue: VecDeque<usize> = (0..graph.transition_count()).collect();
    let mut queued = vec![true; graph.transition_count()];

    // Safety valve for graphs where the observed transition is starved
    // while an input-free transition fires unboundedly.
    let cap = rounds
        .saturating_mul(graph.transition_count() as u64)
        .saturating_mul(4)
        .saturating_add(1024);
    let mut total_firings: u64 = 0;

    while observed_times.len() < rounds as usize && total_firings < cap {
        let Some(t) = queue.pop_front() else {
            return SimulationOutcome {
                firings,
                observed_times,
                deadlocked: true,
            };
        };
        queued[t] = false;
        let tid = TransitionId::from_index(t);
        let inputs = graph.input_places(tid);
        let ready = inputs.iter().all(|&p| !tokens[p.index()].is_empty());
        if !ready {
            continue;
        }
        // Start when the latest input token becomes available.
        let start = inputs
            .iter()
            .map(|&p| tokens[p.index()].front().copied().expect("non-empty"))
            .max()
            .unwrap_or(0);
        for &p in inputs {
            tokens[p.index()].pop_front();
        }
        let done = start + graph.transition(tid).delay();
        for &p in graph.output_places(tid) {
            tokens[p.index()].push_back(done);
        }
        firings[t] += 1;
        total_firings += 1;
        if t == observed.index() {
            observed_times.push(start);
        }
        // Re-examine this transition and all consumers of its outputs.
        if !queued[t] {
            queued[t] = true;
            queue.push_back(t);
        }
        for &p in graph.output_places(tid) {
            let consumer = graph.place(p).consumer().index();
            if !queued[consumer] {
                queued[consumer] = true;
                queue.push_back(consumer);
            }
        }
    }

    SimulationOutcome {
        firings,
        observed_times,
        deadlocked: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TmgBuilder;

    #[test]
    fn two_tokens_halve_the_cycle_time() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 4);
        b.add_place(a, a, 2);
        let g = b.build().expect("valid");
        let run = simulate(&g, a, 200);
        let ct = run.estimated_cycle_time().expect("live");
        assert!((ct - 2.0).abs() < 1e-9, "got {ct}");
    }

    #[test]
    fn deadlocked_graph_reports_deadlock() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        let c = b.add_transition("c", 1);
        b.add_place(a, c, 0);
        b.add_place(c, a, 0);
        let g = b.build().expect("valid");
        let run = simulate(&g, a, 10);
        assert!(run.deadlocked);
        assert_eq!(run.estimated_cycle_time(), None);
    }

    #[test]
    fn bottleneck_cycle_dominates() {
        // Two coupled loops; the slower loop (ratio 10) gates the faster.
        let mut b = TmgBuilder::new();
        let fast = b.add_transition("fast", 1);
        let slow = b.add_transition("slow", 9);
        b.add_place(fast, slow, 1);
        b.add_place(slow, fast, 0);
        let g = b.build().expect("valid");
        let run = simulate(&g, fast, 300);
        let ct = run.estimated_cycle_time().expect("live");
        assert!((ct - 10.0).abs() < 1e-9, "got {ct}");
    }

    #[test]
    fn firing_counts_balance_in_strongly_connected_graphs() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 2);
        let c = b.add_transition("c", 3);
        let d = b.add_transition("d", 1);
        b.add_place(a, c, 1);
        b.add_place(c, d, 0);
        b.add_place(d, a, 1);
        let g = b.build().expect("valid");
        let run = simulate(&g, a, 100);
        assert!(!run.deadlocked);
        let max = run.firings.iter().max().copied().unwrap_or(0);
        let min = run.firings.iter().min().copied().unwrap_or(0);
        assert!(max - min <= 2, "firing counts diverged: {:?}", run.firings);
    }

    #[test]
    fn source_like_transition_is_rate_limited_by_feedback() {
        // A "testbench" loop with its own pacing token.
        let mut b = TmgBuilder::new();
        let src = b.add_transition("src", 2);
        let sink = b.add_transition("sink", 1);
        b.add_place(src, sink, 0);
        b.add_place(sink, src, 1);
        let g = b.build().expect("valid");
        let run = simulate(&g, sink, 100);
        let ct = run.estimated_cycle_time().expect("live");
        assert!((ct - 3.0).abs() < 1e-9, "got {ct}");
    }
}
