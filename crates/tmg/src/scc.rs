//! Strongly connected components (iterative Tarjan) on [`RatioGraph`]s.
//!
//! Cycle-ratio analysis runs per component: every cycle lives inside one
//! SCC, so the maximum cycle ratio of the graph is the maximum over its
//! components.

use crate::ratio_graph::RatioGraph;

/// Result of an SCC decomposition: `component[v]` is the component index of
/// vertex `v`; components are numbered in reverse topological order.
#[derive(Debug, Clone)]
pub(crate) struct SccDecomposition {
    pub component: Vec<usize>,
    pub count: usize,
}

impl SccDecomposition {
    /// Groups the vertices of every component into one flat array (CSR
    /// grouping: two allocations total, instead of one `Vec` per
    /// component). Within each group vertices appear in ascending order —
    /// the order the previous `Vec<Vec<usize>>` listing produced.
    pub fn groups(&self) -> SccGroups {
        let mut start = vec![0u32; self.count + 1];
        for &c in &self.component {
            start[c + 1] += 1;
        }
        for i in 0..self.count {
            start[i + 1] += start[i];
        }
        let mut cursor: Vec<u32> = start[..self.count].to_vec();
        let mut items = vec![0u32; self.component.len()];
        for (v, &c) in self.component.iter().enumerate() {
            items[cursor[c] as usize] = v as u32;
            cursor[c] += 1;
        }
        SccGroups { start, items }
    }
}

/// Flat (CSR) listing of every component's member vertices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct SccGroups {
    /// `count + 1` offsets into [`Self::items`].
    start: Vec<u32>,
    /// Member vertices grouped by component, ascending within each group.
    items: Vec<u32>,
}

impl SccGroups {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.start.len().saturating_sub(1)
    }

    /// The member vertices of component `c`, in ascending order.
    pub fn group(&self, c: usize) -> &[u32] {
        &self.items[self.start[c] as usize..self.start[c + 1] as usize]
    }
}

/// Computes strongly connected components with an iterative Tarjan
/// algorithm (explicit stack; safe for the 10,000-process benchmarks where
/// recursion would overflow).
pub(crate) fn tarjan(graph: &RatioGraph) -> SccDecomposition {
    const UNVISITED: usize = usize::MAX;
    let n = graph.node_count;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component = vec![UNVISITED; n];
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Explicit DFS frames: (vertex, next out-edge position to explore).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let out = graph.out(v);
            if *pos < out.len() {
                let e = out[*pos] as usize;
                *pos += 1;
                let w = graph.edges[e].to;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }

    SccDecomposition { component, count }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> RatioGraph {
        let mut g = RatioGraph::with_nodes(n);
        for &(a, b) in edges {
            g.add_edge(a, b, 0, 0, None);
        }
        g
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan(&g);
        assert_eq!(scc.count, 1);
        assert!(scc.component.iter().all(|&c| c == 0));
    }

    #[test]
    fn chain_has_singleton_components() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let scc = tarjan(&g);
        assert_eq!(scc.count, 3);
        let groups = scc.groups();
        assert_eq!(groups.len(), 3);
        assert!((0..groups.len()).all(|c| groups.group(c).len() == 1));
    }

    #[test]
    fn two_cycles_joined_by_bridge() {
        let g = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = tarjan(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.component[0], scc.component[1]);
        assert_eq!(scc.component[2], scc.component[3]);
        assert_ne!(scc.component[0], scc.component[2]);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // A long path plus a back edge: one big SCC, found iteratively.
        let n = 200_000;
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let g = graph(n, &edges);
        let scc = tarjan(&g);
        assert_eq!(scc.count, 1);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let g = graph(2, &[(0, 0), (0, 1)]);
        let scc = tarjan(&g);
        assert_eq!(scc.count, 2);
    }
}
