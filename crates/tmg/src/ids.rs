//! Strongly-typed identifiers for the elements of a timed marked graph.
//!
//! [`PlaceId`] and [`TransitionId`] are newtype indices ([C-NEWTYPE]): they
//! prevent accidentally indexing the place table with a transition id and
//! vice versa. Both are dense indices assigned by the
//! [`TmgBuilder`](crate::TmgBuilder) in insertion order.

use std::fmt;

/// Identifier of a place in a [`Tmg`](crate::Tmg).
///
/// Places hold tokens and have exactly one producer and one consumer
/// transition. The id is a dense index into the graph's place table.
///
/// # Examples
///
/// ```
/// use tmg::TmgBuilder;
/// let mut b = TmgBuilder::new();
/// let t = b.add_transition("t", 1);
/// let p = b.add_place(t, t, 1);
/// assert_eq!(p.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub(crate) u32);

/// Identifier of a transition in a [`Tmg`](crate::Tmg).
///
/// Transitions carry a delay and fire by moving tokens. The id is a dense
/// index into the graph's transition table.
///
/// # Examples
///
/// ```
/// use tmg::TmgBuilder;
/// let mut b = TmgBuilder::new();
/// let t = b.add_transition("compute", 5);
/// assert_eq!(t.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub(crate) u32);

impl PlaceId {
    /// Creates a place id from a raw dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        PlaceId(u32::try_from(index).expect("place index exceeds u32 range"))
    }

    /// Returns the dense index of this place.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransitionId {
    /// Creates a transition id from a raw dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TransitionId(u32::try_from(index).expect("transition index exceeds u32 range"))
    }

    /// Returns the dense index of this transition.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_id_roundtrip() {
        let p = PlaceId::from_index(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "p7");
    }

    #[test]
    fn transition_id_roundtrip() {
        let t = TransitionId::from_index(3);
        assert_eq!(t.index(), 3);
        assert_eq!(t.to_string(), "t3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(PlaceId::from_index(1) < PlaceId::from_index(2));
        assert!(TransitionId::from_index(0) < TransitionId::from_index(9));
    }
}
