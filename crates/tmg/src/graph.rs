//! The timed marked graph data structure.
//!
//! Definition 1 of the paper: a timed marked graph (TMG) is a Petri net in
//! which every place has exactly one producer transition and exactly one
//! consumer transition. Transitions carry a delay; places carry an initial
//! marking (token count). The builder enforces the structural restriction by
//! construction: a place is always created *between* two transitions.

use crate::ids::{PlaceId, TransitionId};
use crate::TmgError;

/// A transition of the graph: a named action with a fixed delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    name: String,
    delay: u64,
}

impl Transition {
    /// Human-readable name given at construction.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Firing delay `d(t)` of the transition in clock cycles.
    #[must_use]
    pub fn delay(&self) -> u64 {
        self.delay
    }
}

/// A place of the graph: a token buffer between two transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Place {
    producer: TransitionId,
    consumer: TransitionId,
    initial_tokens: u64,
}

impl Place {
    /// The unique transition that deposits tokens into this place.
    #[must_use]
    pub fn producer(&self) -> TransitionId {
        self.producer
    }

    /// The unique transition that removes tokens from this place.
    #[must_use]
    pub fn consumer(&self) -> TransitionId {
        self.consumer
    }

    /// Token count `M0(p)` of the initial marking.
    #[must_use]
    pub fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }
}

/// Builder for [`Tmg`].
///
/// # Examples
///
/// Build the two-transition producer/consumer ring used throughout the
/// crate's tests: a transition of delay 3 feeding a transition of delay 2,
/// with one token circulating.
///
/// ```
/// use tmg::TmgBuilder;
/// let mut b = TmgBuilder::new();
/// let a = b.add_transition("a", 3);
/// let c = b.add_transition("c", 2);
/// b.add_place(a, c, 1);
/// b.add_place(c, a, 0);
/// let g = b.build()?;
/// assert_eq!(g.transition_count(), 2);
/// assert_eq!(g.place_count(), 2);
/// # Ok::<(), tmg::TmgError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TmgBuilder {
    transitions: Vec<Transition>,
    places: Vec<Place>,
}

impl TmgBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a transition with the given display `name` and firing `delay`.
    pub fn add_transition(&mut self, name: impl Into<String>, delay: u64) -> TransitionId {
        let id = TransitionId::from_index(self.transitions.len());
        self.transitions.push(Transition {
            name: name.into(),
            delay,
        });
        id
    }

    /// Adds a place carrying `tokens` initial tokens from transition
    /// `producer` to transition `consumer`.
    ///
    /// # Panics
    ///
    /// Panics if either transition id was not created by this builder.
    pub fn add_place(
        &mut self,
        producer: TransitionId,
        consumer: TransitionId,
        tokens: u64,
    ) -> PlaceId {
        assert!(
            producer.index() < self.transitions.len(),
            "producer {producer} not in builder"
        );
        assert!(
            consumer.index() < self.transitions.len(),
            "consumer {consumer} not in builder"
        );
        let id = PlaceId::from_index(self.places.len());
        self.places.push(Place {
            producer,
            consumer,
            initial_tokens: tokens,
        });
        id
    }

    /// Pre-allocates room for `transitions` transitions and `places`
    /// places, for callers (like the system-graph lowering) that know the
    /// final sizes up front.
    #[must_use]
    pub fn with_capacity(transitions: usize, places: usize) -> Self {
        TmgBuilder {
            transitions: Vec::with_capacity(transitions),
            places: Vec::with_capacity(places),
        }
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`TmgError::Empty`] if the builder holds no transitions.
    pub fn build(self) -> Result<Tmg, TmgError> {
        if self.transitions.is_empty() {
            return Err(TmgError::Empty);
        }
        // CSR adjacency by counting sort: one offset array plus one flat
        // id array per direction, no per-transition `Vec`s. Filling from
        // an ascending place-id scan keeps each transition's list in
        // ascending place order — the exact order the previous nested
        // `Vec` construction pushed in, so every traversal downstream
        // sees identical sequences.
        let n = self.transitions.len();
        let m = self.places.len();
        assert!(
            m < u32::MAX as usize && n < u32::MAX as usize,
            "graph exceeds u32 index space"
        );
        let mut out_start = vec![0u32; n + 1];
        let mut in_start = vec![0u32; n + 1];
        for place in &self.places {
            out_start[place.producer.index() + 1] += 1;
            in_start[place.consumer.index() + 1] += 1;
        }
        for i in 0..n {
            out_start[i + 1] += out_start[i];
            in_start[i + 1] += in_start[i];
        }
        let mut out_cursor: Vec<u32> = out_start[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_start[..n].to_vec();
        let mut out_list = vec![PlaceId::from_index(0); m];
        let mut in_list = vec![PlaceId::from_index(0); m];
        for (i, place) in self.places.iter().enumerate() {
            let p = place.producer.index();
            out_list[out_cursor[p] as usize] = PlaceId::from_index(i);
            out_cursor[p] += 1;
            let c = place.consumer.index();
            in_list[in_cursor[c] as usize] = PlaceId::from_index(i);
            in_cursor[c] += 1;
        }
        Ok(Tmg {
            transitions: self.transitions,
            places: self.places,
            out_start,
            out_list,
            in_start,
            in_list,
        })
    }
}

/// An immutable timed marked graph.
///
/// Create one through [`TmgBuilder`]. The structure satisfies the marked
/// graph restriction by construction: every place has exactly one producer
/// and one consumer.
///
/// # Examples
///
/// ```
/// use tmg::TmgBuilder;
/// let mut b = TmgBuilder::new();
/// let t = b.add_transition("self-loop", 4);
/// b.add_place(t, t, 2);
/// let g = b.build()?;
/// // Two tokens circulating through a delay-4 transition: mean cycle time 2.
/// assert_eq!(g.total_tokens(), 2);
/// # Ok::<(), tmg::TmgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tmg {
    transitions: Vec<Transition>,
    places: Vec<Place>,
    /// CSR offsets into [`Self::out_list`], `transition_count() + 1` long.
    out_start: Vec<u32>,
    /// Outgoing places of every transition, grouped by producer.
    out_list: Vec<PlaceId>,
    /// CSR offsets into [`Self::in_list`], `transition_count() + 1` long.
    in_start: Vec<u32>,
    /// Incoming places of every transition, grouped by consumer.
    in_list: Vec<PlaceId>,
}

impl Tmg {
    /// Number of transitions.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Number of places.
    #[must_use]
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Looks up a transition.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// Looks up a place.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn place(&self, id: PlaceId) -> &Place {
        &self.places[id.index()]
    }

    /// Iterates over all transition ids in index order.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len()).map(TransitionId::from_index)
    }

    /// Iterates over all place ids in index order.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len()).map(PlaceId::from_index)
    }

    /// Places whose producer is `t` (the outgoing places of `t`).
    #[must_use]
    pub fn output_places(&self, t: TransitionId) -> &[PlaceId] {
        let i = t.index();
        &self.out_list[self.out_start[i] as usize..self.out_start[i + 1] as usize]
    }

    /// Places whose consumer is `t` (the incoming places of `t`).
    #[must_use]
    pub fn input_places(&self, t: TransitionId) -> &[PlaceId] {
        let i = t.index();
        &self.in_list[self.in_start[i] as usize..self.in_start[i + 1] as usize]
    }

    /// Updates the firing delay of transition `id` in place.
    ///
    /// This is the only mutation the graph supports after construction: it
    /// changes timing, never structure, so structural analyses (deadlock,
    /// SCC decomposition) computed before the call remain valid. The
    /// incremental analyzer relies on exactly that invariant.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn set_transition_delay(&mut self, id: TransitionId, delay: u64) {
        self.transitions[id.index()].delay = delay;
    }

    /// Sum of the initial marking over all places.
    ///
    /// This quantity is invariant under firing for the *whole graph only
    /// when every transition has equally many input and output places*; what
    /// is always invariant is the token count along each cycle, which the
    /// analyses in this crate rely on.
    #[must_use]
    pub fn total_tokens(&self) -> u64 {
        self.places.iter().map(Place::initial_tokens).sum()
    }

    /// Returns the initial marking as a vector indexed by place.
    #[must_use]
    pub fn initial_marking(&self) -> Marking {
        Marking {
            tokens: self.places.iter().map(Place::initial_tokens).collect(),
        }
    }

    /// True if the underlying directed graph (transitions as vertices,
    /// places as arcs) is strongly connected.
    ///
    /// All transitions of a strongly connected TMG share one cycle time
    /// (Section 3 of the paper), which is the natural performance metric.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        if self.transitions.is_empty() {
            return false;
        }
        let n = self.transitions.len();
        let reaches_all = |forward: bool| {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                let t = TransitionId::from_index(v);
                let arcs = if forward {
                    self.output_places(t)
                } else {
                    self.input_places(t)
                };
                for &p in arcs {
                    let place = &self.places[p.index()];
                    let next = if forward {
                        place.consumer.index()
                    } else {
                        place.producer.index()
                    };
                    if !seen[next] {
                        seen[next] = true;
                        count += 1;
                        stack.push(next);
                    }
                }
            }
            count == n
        };
        reaches_all(true) && reaches_all(false)
    }
}

/// A marking: the number of tokens currently held by each place.
///
/// Markings evolve by transition firing; see [`Marking::fire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marking {
    tokens: Vec<u64>,
}

impl Marking {
    /// Tokens currently in place `p`.
    #[must_use]
    pub fn tokens(&self, p: PlaceId) -> u64 {
        self.tokens[p.index()]
    }

    /// True if transition `t` is enabled: every input place holds a token.
    #[must_use]
    pub fn is_enabled(&self, graph: &Tmg, t: TransitionId) -> bool {
        graph
            .input_places(t)
            .iter()
            .all(|&p| self.tokens[p.index()] > 0)
    }

    /// Fires transition `t`: removes one token from each input place and
    /// adds one token to each output place.
    ///
    /// # Errors
    ///
    /// Returns [`TmgError::NotEnabled`] if some input place is empty.
    pub fn fire(&mut self, graph: &Tmg, t: TransitionId) -> Result<(), TmgError> {
        if !self.is_enabled(graph, t) {
            return Err(TmgError::NotEnabled(t));
        }
        for &p in graph.input_places(t) {
            self.tokens[p.index()] -= 1;
        }
        for &p in graph.output_places(t) {
            self.tokens[p.index()] += 1;
        }
        Ok(())
    }

    /// Iterates over enabled transitions under this marking.
    pub fn enabled<'g>(&'g self, graph: &'g Tmg) -> impl Iterator<Item = TransitionId> + 'g {
        graph
            .transition_ids()
            .filter(move |&t| self.is_enabled(graph, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Tmg {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 3);
        let c = b.add_transition("c", 2);
        b.add_place(a, c, 1);
        b.add_place(c, a, 0);
        b.build().expect("valid ring")
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = TmgBuilder::new();
        let t0 = b.add_transition("x", 1);
        let t1 = b.add_transition("y", 2);
        assert_eq!(t0.index(), 0);
        assert_eq!(t1.index(), 1);
        let p = b.add_place(t0, t1, 5);
        assert_eq!(p.index(), 0);
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert!(matches!(TmgBuilder::new().build(), Err(TmgError::Empty)));
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = ring();
        let a = TransitionId::from_index(0);
        let c = TransitionId::from_index(1);
        assert_eq!(g.output_places(a).len(), 1);
        assert_eq!(g.input_places(a).len(), 1);
        let p = g.output_places(a)[0];
        assert_eq!(g.place(p).producer(), a);
        assert_eq!(g.place(p).consumer(), c);
    }

    #[test]
    fn ring_is_strongly_connected() {
        assert!(ring().is_strongly_connected());
    }

    #[test]
    fn disconnected_graph_is_not_strongly_connected() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        let _lonely = b.add_transition("b", 1);
        b.add_place(a, a, 1);
        let g = b.build().expect("valid");
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn firing_moves_tokens_around_the_ring() {
        let g = ring();
        let a = TransitionId::from_index(0);
        let c = TransitionId::from_index(1);
        let mut m = g.initial_marking();
        assert!(!m.is_enabled(&g, a));
        assert!(m.is_enabled(&g, c));
        m.fire(&g, c).expect("c enabled");
        assert!(m.is_enabled(&g, a));
        m.fire(&g, a).expect("a enabled");
        // Back to the initial marking after firing every transition once.
        assert_eq!(m, g.initial_marking());
    }

    #[test]
    fn firing_disabled_transition_errors() {
        let g = ring();
        let a = TransitionId::from_index(0);
        let mut m = g.initial_marking();
        assert!(matches!(m.fire(&g, a), Err(TmgError::NotEnabled(_))));
    }

    #[test]
    fn cycle_token_count_invariant_under_firing() {
        // The ring is a single cycle: its total tokens must stay constant.
        let g = ring();
        let mut m = g.initial_marking();
        let total: u64 = g.place_ids().map(|p| m.tokens(p)).sum();
        for _ in 0..10 {
            let next = m.enabled(&g).next().expect("ring never deadlocks");
            m.fire(&g, next).expect("enabled");
            let now: u64 = g.place_ids().map(|p| m.tokens(p)).sum();
            assert_eq!(now, total);
        }
    }

    #[test]
    fn enabled_iterator_matches_is_enabled() {
        let g = ring();
        let m = g.initial_marking();
        let listed: Vec<_> = m.enabled(&g).collect();
        assert_eq!(listed, vec![TransitionId::from_index(1)]);
    }
}
