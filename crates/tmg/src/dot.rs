//! Graphviz DOT export of timed marked graphs.
//!
//! Renders transitions as boxes (annotated with their delay), places as
//! circles (annotated with their token count), matching the usual Petri
//! net iconography — Fig. 3 of the paper as a picture.

use crate::graph::Tmg;
use std::fmt::Write as _;

/// Renders the graph as a Graphviz `digraph`.
///
/// # Examples
///
/// ```
/// use tmg::{to_dot, TmgBuilder};
/// let mut b = TmgBuilder::new();
/// let a = b.add_transition("produce", 3);
/// let c = b.add_transition("consume", 2);
/// b.add_place(a, c, 1);
/// b.add_place(c, a, 0);
/// let g = b.build()?;
/// let dot = to_dot(&g);
/// assert!(dot.contains("produce"));
/// assert!(dot.contains("●")); // the circulating token
/// # Ok::<(), tmg::TmgError>(())
/// ```
#[must_use]
pub fn to_dot(graph: &Tmg) -> String {
    let mut out = String::from("digraph tmg {\n  rankdir=LR;\n");
    for t in graph.transition_ids() {
        let tr = graph.transition(t);
        let _ = writeln!(
            out,
            "  {t} [shape=box, label=\"{}\\nd={}\"];",
            tr.name(),
            tr.delay()
        );
    }
    for p in graph.place_ids() {
        let place = graph.place(p);
        let tokens = place.initial_tokens();
        let marks = match tokens {
            0 => String::new(),
            1..=4 => "●".repeat(tokens as usize),
            n => format!("{n}●"),
        };
        let _ = writeln!(out, "  {p} [shape=circle, label=\"{marks}\"];");
        let _ = writeln!(out, "  {} -> {p};", place.producer());
        let _ = writeln!(out, "  {p} -> {};", place.consumer());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TmgBuilder;

    #[test]
    fn dot_lists_every_element() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("alpha", 5);
        let c = b.add_transition("beta", 2);
        b.add_place(a, c, 2);
        b.add_place(c, a, 0);
        let g = b.build().expect("valid");
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph tmg {"));
        assert!(dot.contains("alpha\\nd=5"));
        assert!(dot.contains("beta\\nd=2"));
        assert!(dot.contains("●●"), "two tokens rendered");
        assert_eq!(dot.matches(" -> ").count(), 4, "two arcs per place");
    }

    #[test]
    fn large_token_counts_render_numerically() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        b.add_place(a, a, 9);
        let g = b.build().expect("valid");
        assert!(to_dot(&g).contains("9●"));
    }
}
