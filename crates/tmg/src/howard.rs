//! Howard's policy-iteration algorithm for the maximum cycle ratio.
//!
//! This is the algorithm the paper adopts (its reference [2],
//! Cochet-Terrasson et al.) to compute the cycle time of a timed marked
//! graph: the maximum over all cycles of `Σdelay / Σtokens`. It maintains a
//! *policy* (one outgoing edge per vertex), evaluates the unique cycle each
//! policy path leads to, and greedily improves the policy first by cycle
//! ratio and then by bias value until a fixed point. All arithmetic is
//! exact: ratios are canonical fractions and bias values are 128-bit
//! integers scaled by the ratio denominator.
//!
//! The solver runs per strongly connected component; cycles with zero
//! tokens (infinite ratio — structural deadlock) must be excluded by the
//! caller, which [`analysis`](crate::analysis) does with the token-free
//! cycle check.

use crate::ratio::Ratio;
use crate::ratio_graph::{EdgeIdx, RatioGraph};
use crate::scc::SccDecomposition;
use parx::{CancelToken, Cancelled};

/// A critical cycle with its exact ratio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CycleRatioResult {
    pub ratio: Ratio,
    /// Edge indices of one cycle achieving the ratio, in traversal order.
    pub cycle_edges: Vec<EdgeIdx>,
}

/// Integer width the policy iteration computes in.
///
/// The algorithm needs products of delays, tokens, and ratio components,
/// plus sums of up to `k + 1` such products (bias chains). `i128` is always
/// wide enough; when the per-component magnitude bounds prove `i64` cannot
/// overflow either, the solver runs the *same* arithmetic in `i64` — the
/// values are identical integers, so the narrow path is bit-identical to
/// the wide one, just ~2-3× faster on the hot scans.
trait WideInt: Copy + Ord + Default + std::ops::Add<Output = Self> {
    fn mul(a: i64, b: i64) -> Self;
}

impl WideInt for i64 {
    #[inline]
    fn mul(a: i64, b: i64) -> i64 {
        // Callers dispatch here only when the component-wide bounds prove
        // this cannot overflow.
        a * b
    }
}

impl WideInt for i128 {
    #[inline]
    fn mul(a: i64, b: i64) -> i128 {
        i128::from(a) * i128::from(b)
    }
}

/// Reduced cost of an edge under ratio `num/den`, scaled by `den`.
#[inline]
fn reduced_cost<W: WideInt>(delay: i64, tokens: i64, ratio: Ratio) -> W {
    W::mul(delay, ratio.denom()) + W::mul(-ratio.numer(), tokens)
}

/// Exact `a > b` by cross multiplication.
#[inline]
fn ratio_gt<W: WideInt>(a: Ratio, b: Ratio) -> bool {
    W::mul(a.numer(), b.denom()) > W::mul(b.numer(), a.denom())
}

/// A component-internal edge, copied into contiguous scratch memory.
///
/// The policy iteration reads each edge's head and weights thousands of
/// times; chasing them through `graph.edges[out_list[i]]` costs two
/// dependent loads per read. Copying the component's edges into one dense
/// array (with heads already relabeled to local indices) makes every hot
/// read a single sequential load. The values are verbatim copies, so the
/// iteration computes exactly what it would on the original arrays.
#[derive(Debug, Clone, Copy, Default)]
struct LocalEdge {
    /// Head vertex, in component-local indexing.
    to: u32,
    /// Original edge index, for witness extraction.
    global: u32,
    delay: i64,
    tokens: i64,
}

/// Reusable working memory for [`howard_on_component_with`].
///
/// One solve of a `k`-vertex component needs a dozen short-lived vectors;
/// allocating them per call dominates the runtime of small solves. Holding
/// a scratch across calls (as the incremental analyzer does per session)
/// makes repeated solves allocation-free in the steady state. The scratch
/// carries **no state between calls** — every field is (re)initialized
/// before use — so reusing one never changes a result.
#[derive(Debug, Default)]
pub(crate) struct HowardScratch {
    /// Global vertex -> local index within the current component. Sized to
    /// the graph's node count; entries for non-members are stale and never
    /// read (all reads go through edges internal to the component).
    local: Vec<usize>,
    /// CSR offsets of internal out-edges per local vertex (`k + 1` entries).
    out_start: Vec<usize>,
    /// CSR edge list: internal out-edges grouped by local source vertex,
    /// in ascending edge-index order within each group (the same order the
    /// per-vertex `Vec` construction used to produce).
    edges: Vec<LocalEdge>,
    /// Write cursors for the CSR fill pass.
    cursor: Vec<usize>,
    /// Current policy: one index into [`Self::edges`] per local vertex.
    policy: Vec<usize>,
    lambda: Vec<Ratio>,
    /// Bias values for the narrow (overflow-proven-impossible) path.
    bias64: Vec<i64>,
    /// Bias values for the wide fallback path.
    bias128: Vec<i128>,
    /// Evaluation state: 0 = unvisited, 1 = on current path, 2 = resolved.
    state: Vec<u8>,
    /// Current evaluation walk, reused across starts and iterations.
    path: Vec<usize>,
    /// Cycle-extraction visit positions.
    seen_at: Vec<usize>,
    /// Cycle-extraction visit order.
    order: Vec<usize>,
}

impl HowardScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread scratch arena shared by every [`howard_on_component`]
    /// call on that thread. A `parx` worker draining the per-SCC job queue
    /// reuses one arena across all the components it solves (and the
    /// serial path reuses it across whole analyses), so the steady state
    /// allocates nothing per solve. Safe because the scratch carries no
    /// state between calls — see [`HowardScratch`].
    static SCRATCH: std::cell::RefCell<HowardScratch> =
        std::cell::RefCell::new(HowardScratch::new());
}

/// Runs Howard's algorithm on one strongly connected component, using the
/// calling thread's scratch arena.
///
/// `members` lists the vertices of the component; all cycles through them
/// are assumed to have positive token sums. Returns `Ok(None)` if the
/// component contains no cycle (single vertex without self-loop) or if the
/// iteration cap is hit (callers fall back to the parametric solver), and
/// `Err(Cancelled)` when `cancel` fires between policy-improvement rounds —
/// the poll granularity that bounds cancellation latency to one round.
pub(crate) fn howard_on_component(
    graph: &RatioGraph,
    scc: &SccDecomposition,
    members: &[u32],
    cancel: Option<&CancelToken>,
) -> Result<Option<CycleRatioResult>, Cancelled> {
    SCRATCH.with(|scratch| {
        howard_on_component_with(&mut scratch.borrow_mut(), graph, scc, members, cancel)
    })
}

/// [`howard_on_component`] with caller-provided scratch memory.
///
/// Bit-identical to the plain entry point: the scratch only changes where
/// the working vectors live, not what the iteration computes.
pub(crate) fn howard_on_component_with(
    scratch: &mut HowardScratch,
    graph: &RatioGraph,
    scc: &SccDecomposition,
    members: &[u32],
    cancel: Option<&CancelToken>,
) -> Result<Option<CycleRatioResult>, Cancelled> {
    let k = members.len();
    let comp = scc.component[members[0] as usize];
    let HowardScratch {
        local,
        out_start,
        edges,
        cursor,
        policy,
        lambda,
        bias64,
        bias128,
        state,
        path,
        seen_at,
        order,
    } = scratch;

    // Local relabeling. Stale entries for other vertices are never read:
    // every lookup goes through an edge whose endpoints are in `members`.
    if local.len() < graph.node_count {
        local.resize(graph.node_count, usize::MAX);
    }
    for (i, &v) in members.iter().enumerate() {
        local[v as usize] = i;
    }

    // Internal edges only, in CSR form. Grouping by counting sort over the
    // ascending edge-index scan preserves the per-vertex edge order of the
    // original `Vec<Vec<EdgeIdx>>` construction.
    out_start.clear();
    out_start.resize(k + 1, 0);
    for e in &graph.edges {
        if scc.component[e.from] == comp && scc.component[e.to] == comp {
            out_start[local[e.from] + 1] += 1;
        }
    }
    for i in 0..k {
        out_start[i + 1] += out_start[i];
    }
    let edge_total = out_start[k];
    if edge_total == 0 {
        return Ok(None);
    }
    cursor.clear();
    cursor.extend_from_slice(&out_start[..k]);
    edges.clear();
    edges.resize(edge_total, LocalEdge::default());
    for (idx, e) in graph.edges.iter().enumerate() {
        if scc.component[e.from] == comp && scc.component[e.to] == comp {
            let u = local[e.from];
            edges[cursor[u]] = LocalEdge {
                to: local[e.to] as u32,
                global: idx as u32,
                delay: e.delay,
                tokens: e.tokens,
            };
            cursor[u] += 1;
        }
    }
    // In a non-trivial SCC every vertex has an internal out-edge; a trivial
    // SCC (single vertex) only qualifies with a self-loop, checked above.
    debug_assert!((0..k).all(|u| out_start[u + 1] > out_start[u]));

    // Seed each vertex with its maximum-delay out-edge (first one on ties).
    // Howard improves the policy monotonically upward, so starting near
    // the heavy edges reaches the critical cycle in fewer rounds than the
    // arbitrary first-edge seed; the seed is a pure function of the graph,
    // keeping the whole iteration deterministic.
    policy.clear();
    policy.extend((0..k).map(|u| {
        let mut best = out_start[u];
        for cand in out_start[u] + 1..out_start[u + 1] {
            let e = &edges[cand];
            let b = &edges[best];
            // d1/(t1+1) > d2/(t2+1) by cross multiplication.
            if i128::from(e.delay) * i128::from(b.tokens + 1)
                > i128::from(b.delay) * i128::from(e.tokens + 1)
            {
                best = cand;
            }
        }
        best
    }));
    lambda.clear();
    lambda.resize(k, Ratio::zero());
    state.clear();
    state.resize(k, 0u8);

    // Magnitude bounds over the component decide the arithmetic width.
    // Every ratio is a (sub)cycle delay sum over a (sub)cycle token sum,
    // so numerators are bounded by the component's total delay and
    // denominators by its total tokens; reduced costs by `d·den + num·t`;
    // bias chains by `k + 1` reduced costs. When all of it fits `i64`
    // comfortably, the narrow path computes the identical integers.
    let mut d_max: i128 = 0;
    let mut t_max: i128 = 0;
    let mut d_sum: i128 = 0;
    let mut t_sum: i128 = 0;
    for e in edges.iter() {
        d_max = d_max.max(i128::from(e.delay));
        t_max = t_max.max(i128::from(e.tokens));
        d_sum += i128::from(e.delay);
        t_sum += i128::from(e.tokens);
    }
    let num_max = d_sum.max(1);
    let den_max = t_sum.max(1);
    let rc_max = d_max * den_max + num_max * t_max;
    let bias_max = (k as i128 + 1) * rc_max;
    let limit = i128::from(i64::MAX) / 4;
    let converged = if bias_max < limit && num_max * den_max < limit {
        bias64.clear();
        bias64.resize(k, 0i64);
        iterate::<i64>(
            edges, out_start, policy, lambda, bias64, state, path, k, cancel,
        )?
    } else {
        bias128.clear();
        bias128.resize(k, 0i128);
        iterate::<i128>(
            edges, out_start, policy, lambda, bias128, state, path, k, cancel,
        )?
    };
    Ok(converged.map(|best| extract_policy_cycle(edges, policy, best, seen_at, order)))
}

/// The policy-iteration loop: evaluate the current policy, then run one
/// fused improvement sweep that switches each vertex's policy to any
/// out-edge offering a lexicographically larger `(cycle ratio, bias)`,
/// until a fixed point or the iteration cap. Returns the lambda-maximal
/// vertex on convergence (the witness extraction start), `None` on cap.
///
/// The improvement sweep alternates direction by iteration parity. Within
/// one sweep an improvement at vertex `v` is visible to every vertex
/// scanned after it (Gauss–Seidel), so values propagate arbitrarily far
/// along edges oriented *with* the scan in a single round but only one
/// step per round against it; alternating the direction lets chains of
/// either orientation collapse in one round each, roughly halving the
/// round count on pipeline-shaped graphs. The direction schedule is a
/// pure function of the iteration index, so the solve stays
/// deterministic.
#[allow(clippy::too_many_arguments)]
fn iterate<W: WideInt>(
    edges: &[LocalEdge],
    out_start: &[usize],
    policy: &mut [usize],
    lambda: &mut [Ratio],
    bias: &mut [W],
    state: &mut [u8],
    path: &mut Vec<usize>,
    k: usize,
    cancel: Option<&CancelToken>,
) -> Result<Option<usize>, Cancelled> {
    let max_iterations = 64 + 8 * k;
    for iteration in 0..max_iterations {
        if let Some(token) = cancel {
            token.check()?;
        }
        // --- Evaluate the current policy. -------------------------------
        state.iter_mut().for_each(|s| *s = 0);
        for start in 0..k {
            if state[start] != 0 {
                continue;
            }
            // Walk the functional graph recording the path.
            path.clear();
            path.push(start);
            state[start] = 1;
            loop {
                let v = *path.last().expect("path non-empty");
                let w = edges[policy[v]].to as usize;
                match state[w] {
                    0 => {
                        state[w] = 1;
                        path.push(w);
                    }
                    1 => {
                        // Found a new policy cycle starting at `w`.
                        let cycle_start = path
                            .iter()
                            .position(|&x| x == w)
                            .expect("on-path node is in path");
                        let cycle = &path[cycle_start..];
                        let mut delay_sum: i64 = 0;
                        let mut token_sum: i64 = 0;
                        for &u in cycle {
                            let e = &edges[policy[u]];
                            delay_sum += e.delay;
                            token_sum += e.tokens;
                        }
                        debug_assert!(token_sum > 0, "zero-token cycle must be pre-excluded");
                        let ratio = Ratio::new(delay_sum, token_sum);
                        // Bias around the cycle: x(u) = rc(u) + x(next(u)),
                        // anchored at x(cycle[0]) = 0.
                        lambda[cycle[0]] = ratio;
                        bias[cycle[0]] = W::default();
                        for i in (1..cycle.len()).rev() {
                            let u = cycle[i];
                            let e = &edges[policy[u]];
                            let next = e.to as usize;
                            lambda[u] = ratio;
                            bias[u] = reduced_cost::<W>(e.delay, e.tokens, ratio) + bias[next];
                        }
                        for &u in cycle {
                            state[u] = 2;
                        }
                        // Prefix of the path drains into the cycle.
                        for i in (0..cycle_start).rev() {
                            let u = path[i];
                            let e = &edges[policy[u]];
                            let next = e.to as usize;
                            lambda[u] = lambda[next];
                            bias[u] = reduced_cost::<W>(e.delay, e.tokens, lambda[u]) + bias[next];
                            state[u] = 2;
                        }
                        break;
                    }
                    _ => {
                        // Path drains into an already-resolved region.
                        for i in (0..path.len()).rev() {
                            let u = path[i];
                            let e = &edges[policy[u]];
                            let next = e.to as usize;
                            lambda[u] = lambda[next];
                            bias[u] = reduced_cost::<W>(e.delay, e.tokens, lambda[u]) + bias[next];
                            state[u] = 2;
                        }
                        break;
                    }
                }
            }
        }

        // --- Improve: lexicographically by (ratio, bias). ---------------
        // One fused sweep switches `u`'s policy to any out-edge whose head
        // offers a strictly larger cycle ratio, or — at equal ratio — a
        // strictly larger chained bias. On a ratio adoption the bias is
        // set to the chained value along the new edge so later
        // comparisons in the same sweep stay meaningful (the next
        // evaluation recomputes the exact values either way). Improvements
        // made earlier in the sweep are visible to vertices scanned later
        // (Gauss–Seidel), and the scan direction alternates by iteration
        // parity so chains of either orientation collapse quickly.
        let forward = iteration % 2 == 0;
        let mut improved = false;
        for step in 0..k {
            let u = if forward { step } else { k - 1 - step };
            let out_edges = edges[..out_start[u + 1]].iter().enumerate();
            for (cand, e) in out_edges.skip(out_start[u]) {
                let v = e.to as usize;
                if lambda[v] != lambda[u] {
                    // Canonical form: distinct fields <=> distinct values,
                    // so the cheap inequality gates the multiplication.
                    if ratio_gt::<W>(lambda[v], lambda[u]) {
                        lambda[u] = lambda[v];
                        bias[u] = reduced_cost::<W>(e.delay, e.tokens, lambda[v]) + bias[v];
                        policy[u] = cand;
                        improved = true;
                    }
                } else {
                    let candidate = reduced_cost::<W>(e.delay, e.tokens, lambda[u]) + bias[v];
                    if candidate > bias[u] {
                        bias[u] = candidate;
                        policy[u] = cand;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            // Converged: the lambda-maximal vertex anchors the witness.
            trace::attr("iters", iteration + 1);
            let best = (0..k)
                .max_by(|&a, &b| lambda[a].cmp(&lambda[b]))
                .expect("component non-empty");
            return Ok(Some(best));
        }
    }
    trace::attr("iters", max_iterations);
    Ok(None)
}

/// Follows the policy from `start` until a vertex repeats and returns the
/// cycle reached, with its exact ratio.
fn extract_policy_cycle(
    edges: &[LocalEdge],
    policy: &[usize],
    start: usize,
    seen_at: &mut Vec<usize>,
    order: &mut Vec<usize>,
) -> CycleRatioResult {
    let k = policy.len();
    seen_at.clear();
    seen_at.resize(k, usize::MAX);
    order.clear();
    let mut v = start;
    loop {
        if seen_at[v] != usize::MAX {
            let cycle_nodes = &order[seen_at[v]..];
            let cycle_edges: Vec<EdgeIdx> = cycle_nodes
                .iter()
                .map(|&u| edges[policy[u]].global as EdgeIdx)
                .collect();
            let delay_sum: i64 = cycle_nodes.iter().map(|&u| edges[policy[u]].delay).sum();
            let token_sum: i64 = cycle_nodes.iter().map(|&u| edges[policy[u]].tokens).sum();
            return CycleRatioResult {
                ratio: Ratio::new(delay_sum, token_sum),
                cycle_edges,
            };
        }
        seen_at[v] = order.len();
        order.push(v);
        v = edges[policy[v]].to as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::tarjan;

    fn solve(g: &RatioGraph) -> Option<CycleRatioResult> {
        let scc = tarjan(g);
        let groups = scc.groups();
        let mut best: Option<CycleRatioResult> = None;
        for c in 0..groups.len() {
            if let Some(r) =
                howard_on_component(g, &scc, groups.group(c), None).expect("not cancelled")
            {
                if best.as_ref().is_none_or(|b| r.ratio > b.ratio) {
                    best = Some(r);
                }
            }
        }
        best
    }

    #[test]
    fn cancelled_token_stops_the_solve() {
        use parx::{CancelReason, CancelToken};
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(1, 0, 1, 1, None);
        let scc = tarjan(&g);
        let groups = scc.groups();
        let token = CancelToken::new();
        token.cancel(CancelReason::Disconnected);
        let err = howard_on_component(&g, &scc, groups.group(0), Some(&token))
            .expect_err("token already cancelled");
        assert_eq!(err.reason, CancelReason::Disconnected);
    }

    #[test]
    fn single_self_loop() {
        let mut g = RatioGraph::with_nodes(1);
        g.add_edge(0, 0, 7, 2, None);
        let r = solve(&g).expect("cycle exists");
        assert_eq!(r.ratio, Ratio::new(7, 2));
        assert_eq!(r.cycle_edges, vec![0]);
    }

    #[test]
    fn picks_worse_of_two_loops() {
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 0, 3, 1, None); // ratio 3
        g.add_edge(1, 1, 7, 2, None); // ratio 3.5  <- critical
        g.add_edge(0, 1, 0, 1, None);
        let r = solve(&g).expect("cycles exist");
        assert_eq!(r.ratio, Ratio::new(7, 2));
    }

    #[test]
    fn two_cycles_sharing_a_vertex() {
        let mut g = RatioGraph::with_nodes(3);
        // Cycle A: 0 -> 1 -> 0 with delay 10, tokens 2 (ratio 5).
        g.add_edge(0, 1, 4, 1, None);
        g.add_edge(1, 0, 6, 1, None);
        // Cycle B: 0 -> 2 -> 0 with delay 9, tokens 1 (ratio 9) <- critical.
        g.add_edge(0, 2, 4, 0, None);
        g.add_edge(2, 0, 5, 1, None);
        let r = solve(&g).expect("cycles exist");
        assert_eq!(r.ratio, Ratio::new(9, 1));
        assert_eq!(r.cycle_edges.len(), 2);
    }

    #[test]
    fn critical_cycle_witness_is_consistent() {
        let mut g = RatioGraph::with_nodes(4);
        g.add_edge(0, 1, 2, 1, None);
        g.add_edge(1, 2, 3, 0, None);
        g.add_edge(2, 0, 4, 1, None);
        g.add_edge(2, 3, 1, 0, None);
        g.add_edge(3, 2, 8, 1, None);
        let r = solve(&g).expect("cycles exist");
        // Cycle 2->3->2: ratio 9/1; cycle 0->1->2->0: ratio 9/2.
        assert_eq!(r.ratio, Ratio::new(9, 1));
        // Witness edges must form a closed walk achieving the ratio.
        let d: i64 = r.cycle_edges.iter().map(|&e| g.edges[e].delay).sum();
        let w: i64 = r.cycle_edges.iter().map(|&e| g.edges[e].tokens).sum();
        assert_eq!(Ratio::new(d, w), r.ratio);
        for (i, &e) in r.cycle_edges.iter().enumerate() {
            let next = r.cycle_edges[(i + 1) % r.cycle_edges.len()];
            assert_eq!(g.edges[e].to, g.edges[next].from);
        }
    }

    #[test]
    fn acyclic_graph_returns_none() {
        let mut g = RatioGraph::with_nodes(3);
        g.add_edge(0, 1, 5, 1, None);
        g.add_edge(1, 2, 5, 1, None);
        assert!(solve(&g).is_none());
    }

    #[test]
    fn parallel_edges_are_considered() {
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(1, 0, 1, 1, None); // ratio 1
        g.add_edge(1, 0, 9, 1, None); // ratio 5 with first edge <- critical
        let r = solve(&g).expect("cycles exist");
        assert_eq!(r.ratio, Ratio::new(10, 2));
    }

    #[test]
    fn larger_ring_with_cross_chords() {
        // Ring of 6 with delay 1 per edge and two tokens: ratio 3.
        // A chord creating a tighter loop of delay 15 over 1 token: 15.
        let mut g = RatioGraph::with_nodes(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6, 1, i64::from(i <= 1), None);
        }
        g.add_edge(3, 1, 13, 0, None);
        g.add_edge(1, 3, 2, 1, None);
        let r = solve(&g).expect("cycles exist");
        assert_eq!(r.ratio, Ratio::new(15, 1));
    }

    #[test]
    fn scratch_reuse_across_mismatched_components_is_bit_identical() {
        // Solve a large component, then a small one, then the large one
        // again with the *same* scratch; every answer must match a
        // fresh-scratch solve bit for bit.
        let mut big = RatioGraph::with_nodes(10);
        for i in 0..10 {
            g_edge(&mut big, i, (i + 1) % 10, 1 + i as i64, i64::from(i == 0));
        }
        big.add_edge(4, 1, 17, 1, None);
        let mut small = RatioGraph::with_nodes(2);
        small.add_edge(0, 1, 3, 1, None);
        small.add_edge(1, 0, 2, 1, None);

        let scc_big = tarjan(&big);
        let scc_small = tarjan(&small);
        let mem_big = scc_big.groups();
        let mem_small = scc_small.groups();

        let mut scratch = HowardScratch::new();
        for _ in 0..3 {
            for (g, scc, members) in [
                (&big, &scc_big, mem_big.group(0)),
                (&small, &scc_small, mem_small.group(0)),
            ] {
                let reused = howard_on_component_with(&mut scratch, g, scc, members, None)
                    .expect("not cancelled");
                let fresh = howard_on_component(g, scc, members, None).expect("not cancelled");
                assert_eq!(reused, fresh);
            }
        }
    }

    fn g_edge(g: &mut RatioGraph, from: usize, to: usize, delay: i64, tokens: i64) {
        g.add_edge(from, to, delay, tokens, None);
    }
}
