//! Howard's policy-iteration algorithm for the maximum cycle ratio.
//!
//! This is the algorithm the paper adopts (its reference [2],
//! Cochet-Terrasson et al.) to compute the cycle time of a timed marked
//! graph: the maximum over all cycles of `Σdelay / Σtokens`. It maintains a
//! *policy* (one outgoing edge per vertex), evaluates the unique cycle each
//! policy path leads to, and greedily improves the policy first by cycle
//! ratio and then by bias value until a fixed point. All arithmetic is
//! exact: ratios are canonical fractions and bias values are 128-bit
//! integers scaled by the ratio denominator.
//!
//! The solver runs per strongly connected component; cycles with zero
//! tokens (infinite ratio — structural deadlock) must be excluded by the
//! caller, which [`analysis`](crate::analysis) does with the token-free
//! cycle check.

use crate::ratio::Ratio;
use crate::ratio_graph::{EdgeIdx, RatioGraph};
use crate::scc::SccDecomposition;
use parx::{CancelToken, Cancelled};

/// A critical cycle with its exact ratio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CycleRatioResult {
    pub ratio: Ratio,
    /// Edge indices of one cycle achieving the ratio, in traversal order.
    pub cycle_edges: Vec<EdgeIdx>,
}

/// Reduced cost of an edge under ratio `num/den`, scaled by `den`.
fn reduced_cost(delay: i64, tokens: i64, ratio: Ratio) -> i128 {
    i128::from(delay) * i128::from(ratio.denom()) - i128::from(ratio.numer()) * i128::from(tokens)
}

/// Runs Howard's algorithm on one strongly connected component.
///
/// `members` lists the vertices of the component; all cycles through them
/// are assumed to have positive token sums. Returns `Ok(None)` if the
/// component contains no cycle (single vertex without self-loop) or if the
/// iteration cap is hit (callers fall back to the parametric solver), and
/// `Err(Cancelled)` when `cancel` fires between policy-improvement rounds —
/// the poll granularity that bounds cancellation latency to one round.
pub(crate) fn howard_on_component(
    graph: &RatioGraph,
    scc: &SccDecomposition,
    members: &[usize],
    cancel: Option<&CancelToken>,
) -> Result<Option<CycleRatioResult>, Cancelled> {
    let k = members.len();
    let comp = scc.component[members[0]];
    // Local relabeling.
    let mut local = vec![usize::MAX; graph.node_count];
    for (i, &v) in members.iter().enumerate() {
        local[v] = i;
    }
    // Internal edges only.
    let mut out: Vec<Vec<EdgeIdx>> = vec![Vec::new(); k];
    let mut has_edge = false;
    for (idx, e) in graph.edges.iter().enumerate() {
        if scc.component[e.from] == comp && scc.component[e.to] == comp {
            out[local[e.from]].push(idx);
            has_edge = true;
        }
    }
    if !has_edge {
        return Ok(None);
    }
    // In a non-trivial SCC every vertex has an internal out-edge; a trivial
    // SCC (single vertex) only qualifies with a self-loop, checked above.
    debug_assert!(out.iter().all(|o| !o.is_empty()));

    let mut policy: Vec<EdgeIdx> = out.iter().map(|o| o[0]).collect();
    let mut lambda = vec![Ratio::zero(); k];
    let mut bias = vec![0i128; k];

    // Evaluation scratch: 0 = unvisited, 1 = on current path, 2 = resolved.
    let mut state = vec![0u8; k];
    let max_iterations = 64 + 8 * k;

    for iteration in 0..max_iterations {
        if let Some(token) = cancel {
            token.check()?;
        }
        // --- Evaluate the current policy. -------------------------------
        state.iter_mut().for_each(|s| *s = 0);
        for start in 0..k {
            if state[start] != 0 {
                continue;
            }
            // Walk the functional graph recording the path.
            let mut path = vec![start];
            state[start] = 1;
            loop {
                let v = *path.last().expect("path non-empty");
                let w = local[graph.edges[policy[v]].to];
                match state[w] {
                    0 => {
                        state[w] = 1;
                        path.push(w);
                    }
                    1 => {
                        // Found a new policy cycle starting at `w`.
                        let cycle_start = path
                            .iter()
                            .position(|&x| x == w)
                            .expect("on-path node is in path");
                        let cycle = &path[cycle_start..];
                        let mut delay_sum: i64 = 0;
                        let mut token_sum: i64 = 0;
                        for &u in cycle {
                            let e = &graph.edges[policy[u]];
                            delay_sum += e.delay;
                            token_sum += e.tokens;
                        }
                        debug_assert!(token_sum > 0, "zero-token cycle must be pre-excluded");
                        let ratio = Ratio::new(delay_sum, token_sum);
                        // Bias around the cycle: x(u) = rc(u) + x(next(u)),
                        // anchored at x(cycle[0]) = 0.
                        lambda[cycle[0]] = ratio;
                        bias[cycle[0]] = 0;
                        for i in (1..cycle.len()).rev() {
                            let u = cycle[i];
                            let e = &graph.edges[policy[u]];
                            let next = local[e.to];
                            lambda[u] = ratio;
                            bias[u] = reduced_cost(e.delay, e.tokens, ratio) + bias[next];
                        }
                        for &u in cycle {
                            state[u] = 2;
                        }
                        // Prefix of the path drains into the cycle.
                        for i in (0..cycle_start).rev() {
                            let u = path[i];
                            let e = &graph.edges[policy[u]];
                            let next = local[e.to];
                            lambda[u] = lambda[next];
                            bias[u] = reduced_cost(e.delay, e.tokens, lambda[u]) + bias[next];
                            state[u] = 2;
                        }
                        break;
                    }
                    _ => {
                        // Path drains into an already-resolved region.
                        for i in (0..path.len()).rev() {
                            let u = path[i];
                            let e = &graph.edges[policy[u]];
                            let next = local[e.to];
                            lambda[u] = lambda[next];
                            bias[u] = reduced_cost(e.delay, e.tokens, lambda[u]) + bias[next];
                            state[u] = 2;
                        }
                        break;
                    }
                }
            }
        }

        // --- Improve: first by ratio, then by bias. ---------------------
        let mut ratio_improved = false;
        for u in 0..k {
            for &e_idx in &out[u] {
                let e = &graph.edges[e_idx];
                let v = local[e.to];
                if lambda[v] > lambda[u] {
                    lambda[u] = lambda[v];
                    policy[u] = e_idx;
                    ratio_improved = true;
                }
            }
        }
        if ratio_improved {
            continue;
        }
        let mut bias_improved = false;
        for u in 0..k {
            for &e_idx in &out[u] {
                let e = &graph.edges[e_idx];
                let v = local[e.to];
                if lambda[v] == lambda[u] {
                    let cand = reduced_cost(e.delay, e.tokens, lambda[u]) + bias[v];
                    if cand > bias[u] {
                        bias[u] = cand;
                        policy[u] = e_idx;
                        bias_improved = true;
                    }
                }
            }
        }
        if !bias_improved {
            // Converged: extract the best policy cycle.
            trace::attr("iters", iteration + 1);
            let best = (0..k)
                .max_by(|&a, &b| lambda[a].cmp(&lambda[b]))
                .expect("component non-empty");
            return Ok(Some(extract_policy_cycle(graph, &local, &policy, best)));
        }
    }
    trace::attr("iters", max_iterations);
    Ok(None)
}

/// Follows the policy from `start` until a vertex repeats and returns the
/// cycle reached, with its exact ratio.
fn extract_policy_cycle(
    graph: &RatioGraph,
    local: &[usize],
    policy: &[EdgeIdx],
    start: usize,
) -> CycleRatioResult {
    let k = policy.len();
    let mut seen_at = vec![usize::MAX; k];
    let mut order: Vec<usize> = Vec::new();
    let mut v = start;
    loop {
        if seen_at[v] != usize::MAX {
            let cycle_nodes = &order[seen_at[v]..];
            let cycle_edges: Vec<EdgeIdx> = cycle_nodes.iter().map(|&u| policy[u]).collect();
            let delay_sum: i64 = cycle_edges.iter().map(|&e| graph.edges[e].delay).sum();
            let token_sum: i64 = cycle_edges.iter().map(|&e| graph.edges[e].tokens).sum();
            return CycleRatioResult {
                ratio: Ratio::new(delay_sum, token_sum),
                cycle_edges,
            };
        }
        seen_at[v] = order.len();
        order.push(v);
        v = local[graph.edges[policy[v]].to];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::tarjan;

    fn solve(g: &RatioGraph) -> Option<CycleRatioResult> {
        let scc = tarjan(g);
        let mut best: Option<CycleRatioResult> = None;
        for members in scc.members() {
            if let Some(r) = howard_on_component(g, &scc, &members, None).expect("not cancelled") {
                if best.as_ref().is_none_or(|b| r.ratio > b.ratio) {
                    best = Some(r);
                }
            }
        }
        best
    }

    #[test]
    fn cancelled_token_stops_the_solve() {
        use parx::{CancelReason, CancelToken};
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(1, 0, 1, 1, None);
        let scc = tarjan(&g);
        let members = scc.members();
        let token = CancelToken::new();
        token.cancel(CancelReason::Disconnected);
        let err = howard_on_component(&g, &scc, &members[0], Some(&token))
            .expect_err("token already cancelled");
        assert_eq!(err.reason, CancelReason::Disconnected);
    }

    #[test]
    fn single_self_loop() {
        let mut g = RatioGraph::with_nodes(1);
        g.add_edge(0, 0, 7, 2, None);
        let r = solve(&g).expect("cycle exists");
        assert_eq!(r.ratio, Ratio::new(7, 2));
        assert_eq!(r.cycle_edges, vec![0]);
    }

    #[test]
    fn picks_worse_of_two_loops() {
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 0, 3, 1, None); // ratio 3
        g.add_edge(1, 1, 7, 2, None); // ratio 3.5  <- critical
        g.add_edge(0, 1, 0, 1, None);
        let r = solve(&g).expect("cycles exist");
        assert_eq!(r.ratio, Ratio::new(7, 2));
    }

    #[test]
    fn two_cycles_sharing_a_vertex() {
        let mut g = RatioGraph::with_nodes(3);
        // Cycle A: 0 -> 1 -> 0 with delay 10, tokens 2 (ratio 5).
        g.add_edge(0, 1, 4, 1, None);
        g.add_edge(1, 0, 6, 1, None);
        // Cycle B: 0 -> 2 -> 0 with delay 9, tokens 1 (ratio 9) <- critical.
        g.add_edge(0, 2, 4, 0, None);
        g.add_edge(2, 0, 5, 1, None);
        let r = solve(&g).expect("cycles exist");
        assert_eq!(r.ratio, Ratio::new(9, 1));
        assert_eq!(r.cycle_edges.len(), 2);
    }

    #[test]
    fn critical_cycle_witness_is_consistent() {
        let mut g = RatioGraph::with_nodes(4);
        g.add_edge(0, 1, 2, 1, None);
        g.add_edge(1, 2, 3, 0, None);
        g.add_edge(2, 0, 4, 1, None);
        g.add_edge(2, 3, 1, 0, None);
        g.add_edge(3, 2, 8, 1, None);
        let r = solve(&g).expect("cycles exist");
        // Cycle 2->3->2: ratio 9/1; cycle 0->1->2->0: ratio 9/2.
        assert_eq!(r.ratio, Ratio::new(9, 1));
        // Witness edges must form a closed walk achieving the ratio.
        let d: i64 = r.cycle_edges.iter().map(|&e| g.edges[e].delay).sum();
        let w: i64 = r.cycle_edges.iter().map(|&e| g.edges[e].tokens).sum();
        assert_eq!(Ratio::new(d, w), r.ratio);
        for (i, &e) in r.cycle_edges.iter().enumerate() {
            let next = r.cycle_edges[(i + 1) % r.cycle_edges.len()];
            assert_eq!(g.edges[e].to, g.edges[next].from);
        }
    }

    #[test]
    fn acyclic_graph_returns_none() {
        let mut g = RatioGraph::with_nodes(3);
        g.add_edge(0, 1, 5, 1, None);
        g.add_edge(1, 2, 5, 1, None);
        assert!(solve(&g).is_none());
    }

    #[test]
    fn parallel_edges_are_considered() {
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(1, 0, 1, 1, None); // ratio 1
        g.add_edge(1, 0, 9, 1, None); // ratio 5 with first edge <- critical
        let r = solve(&g).expect("cycles exist");
        assert_eq!(r.ratio, Ratio::new(10, 2));
    }

    #[test]
    fn larger_ring_with_cross_chords() {
        // Ring of 6 with delay 1 per edge and two tokens: ratio 3.
        // A chord creating a tighter loop of delay 15 over 1 token: 15.
        let mut g = RatioGraph::with_nodes(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6, 1, i64::from(i <= 1), None);
        }
        g.add_edge(3, 1, 13, 0, None);
        g.add_edge(1, 3, 2, 1, None);
        let r = solve(&g).expect("cycles exist");
        assert_eq!(r.ratio, Ratio::new(15, 1));
    }
}
