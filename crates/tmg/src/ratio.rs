//! Exact rational numbers for cycle-time arithmetic.
//!
//! Cycle times of timed marked graphs are ratios of integer delay sums over
//! integer token counts. Computing them in floating point risks
//! mis-identifying critical cycles when two cycles have nearly equal means,
//! so every analysis in this crate works with [`Ratio`]: an exact,
//! canonicalized fraction compared via 128-bit cross multiplication.

use std::cmp::Ordering;
use std::fmt;

/// An exact non-negative rational number `num / den` in lowest terms.
///
/// The denominator is always strictly positive; construction reduces the
/// fraction by its greatest common divisor, so equal ratios have identical
/// representations and [`Eq`]/[`Hash`] behave as expected.
///
/// # Examples
///
/// ```
/// use tmg::Ratio;
/// let a = Ratio::new(6, 4);
/// let b = Ratio::new(3, 2);
/// assert_eq!(a, b);
/// assert_eq!(a.numer(), 3);
/// assert_eq!(a.denom(), 2);
/// assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a.max(1)
}

impl Ratio {
    /// Creates a ratio `num / den`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or either argument is negative; cycle-time
    /// arithmetic never produces negative quantities.
    #[must_use]
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den > 0, "ratio denominator must be positive, got {den}");
        assert!(num >= 0, "ratio numerator must be non-negative, got {num}");
        let g = gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// The zero ratio `0 / 1`.
    #[must_use]
    pub fn zero() -> Self {
        Ratio { num: 0, den: 1 }
    }

    /// Creates a ratio from an integer value.
    #[must_use]
    pub fn from_integer(value: i64) -> Self {
        assert!(value >= 0, "ratio must be non-negative, got {value}");
        Ratio { num: value, den: 1 }
    }

    /// Numerator in lowest terms.
    #[must_use]
    pub fn numer(self) -> i64 {
        self.num
    }

    /// Denominator in lowest terms (always positive).
    #[must_use]
    pub fn denom(self) -> i64 {
        self.den
    }

    /// The ratio as a floating point value (for reporting only; all
    /// comparisons inside the crate use exact arithmetic).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse, or `None` when the ratio is zero.
    ///
    /// Used to turn a cycle time into a throughput.
    #[must_use]
    pub fn recip(self) -> Option<Ratio> {
        if self.num == 0 {
            None
        } else {
            Some(Ratio {
                num: self.den,
                den: self.num,
            })
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = i128::from(self.num) * i128::from(other.den);
        let rhs = i128::from(other.num) * i128::from(self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Ratio {
    fn from(value: i64) -> Self {
        Ratio::from_integer(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(10, 4);
        assert_eq!(r.numer(), 5);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn equality_is_canonical() {
        assert_eq!(Ratio::new(2, 6), Ratio::new(1, 3));
        assert_ne!(Ratio::new(2, 6), Ratio::new(1, 2));
    }

    #[test]
    fn ordering_uses_cross_multiplication() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(7, 2) > Ratio::new(10, 3));
        assert_eq!(Ratio::new(4, 2).cmp(&Ratio::new(2, 1)), Ordering::Equal);
    }

    #[test]
    fn ordering_survives_large_values() {
        // Values chosen so that naive i64 cross multiplication would overflow.
        let big = Ratio::new(i64::MAX / 2, 3);
        let small = Ratio::new(1, i64::MAX / 2);
        assert!(small < big);
    }

    #[test]
    fn zero_and_integer_constructors() {
        assert_eq!(Ratio::zero(), Ratio::new(0, 17));
        assert_eq!(Ratio::from_integer(12), Ratio::new(24, 2));
        assert_eq!(Ratio::from(5), Ratio::new(5, 1));
    }

    #[test]
    fn recip_inverts() {
        assert_eq!(Ratio::new(3, 4).recip(), Some(Ratio::new(4, 3)));
        assert_eq!(Ratio::zero().recip(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ratio::new(5, 1).to_string(), "5");
        assert_eq!(Ratio::new(5, 2).to_string(), "5/2");
    }

    #[test]
    fn to_f64_matches() {
        assert!((Ratio::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }
}
