//! Parametric (cycle-improvement) maximum-cycle-ratio solver.
//!
//! A Lawler-style exact baseline used to cross-validate
//! [`howard`](crate::howard) and as a fallback should policy iteration ever
//! hit its iteration cap. Starting from the ratio of an arbitrary cycle, it
//! repeatedly reduces edge costs by the current ratio, searches for a
//! positive-cost cycle with Bellman–Ford (longest-path relaxation), and
//! tightens the ratio to that cycle's ratio. When no positive cycle
//! remains, the current ratio is the maximum.
//!
//! All comparisons use exact integers: under candidate ratio `a/b` the
//! reduced cost of an edge is `delay·b − a·tokens`, computed in `i128`.

use crate::howard::CycleRatioResult;
use crate::ratio::Ratio;
use crate::ratio_graph::{EdgeIdx, RatioGraph};

/// Finds one arbitrary cycle via iterative DFS, as a starting point.
/// Returns edge indices in traversal order, or `None` if the graph is
/// acyclic.
pub(crate) fn find_any_cycle(graph: &RatioGraph) -> Option<Vec<EdgeIdx>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = graph.node_count;
    let mut color = vec![WHITE; n];
    let mut parent_edge: Vec<EdgeIdx> = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != WHITE {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = GRAY;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let out = graph.out(v);
            if *pos < out.len() {
                let e = out[*pos] as usize;
                *pos += 1;
                let w = graph.edges[e].to;
                match color[w] {
                    WHITE => {
                        color[w] = GRAY;
                        parent_edge[w] = e;
                        frames.push((w, 0));
                    }
                    GRAY => {
                        // Close the cycle w .. v -> w.
                        let mut cycle = vec![e];
                        let mut cur = v;
                        while cur != w {
                            let pe = parent_edge[cur];
                            cycle.push(pe);
                            cur = graph.edges[pe].from;
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[v] = BLACK;
                frames.pop();
            }
        }
    }
    None
}

/// Ratio of a cycle given as edge indices.
///
/// # Panics
///
/// Panics if the token sum is zero (infinite ratio); callers must exclude
/// zero-token cycles first.
fn cycle_ratio(graph: &RatioGraph, cycle: &[EdgeIdx]) -> Ratio {
    let delay: i64 = cycle.iter().map(|&e| graph.edges[e].delay).sum();
    let tokens: i64 = cycle.iter().map(|&e| graph.edges[e].tokens).sum();
    Ratio::new(delay, tokens)
}

/// Bellman–Ford longest-path relaxation from a virtual source connected to
/// every vertex. Returns a positive-cost cycle (edge list) if one exists
/// under ratio `lambda`, else `None`.
fn find_positive_cycle(graph: &RatioGraph, lambda: Ratio) -> Option<Vec<EdgeIdx>> {
    let n = graph.node_count;
    let cost = |e: EdgeIdx| -> i128 {
        let edge = &graph.edges[e];
        i128::from(edge.delay) * i128::from(lambda.denom())
            - i128::from(lambda.numer()) * i128::from(edge.tokens)
    };
    let mut dist = vec![0i128; n];
    let mut parent: Vec<EdgeIdx> = vec![usize::MAX; n];
    let mut updated_vertex = None;
    for pass in 0..n {
        let mut changed = false;
        for (idx, e) in graph.edges.iter().enumerate() {
            let cand = dist[e.from] + cost(idx);
            if cand > dist[e.to] {
                dist[e.to] = cand;
                parent[e.to] = idx;
                changed = true;
                if pass == n - 1 {
                    updated_vertex = Some(e.to);
                }
            }
        }
        if !changed {
            return None;
        }
    }
    let mut v = updated_vertex?;
    // Walk back n steps to be certain we are on the cycle.
    for _ in 0..n {
        v = graph.edges[parent[v]].from;
    }
    // Extract the cycle through v.
    let mut cycle = Vec::new();
    let mut cur = v;
    loop {
        let e = parent[cur];
        cycle.push(e);
        cur = graph.edges[e].from;
        if cur == v {
            break;
        }
    }
    cycle.reverse();
    Some(cycle)
}

/// Exact maximum cycle ratio by iterative cycle improvement.
///
/// Preconditions: the graph has at least one cycle and no zero-token
/// cycle. Returns the exact maximum ratio and a witness cycle.
pub(crate) fn max_cycle_ratio_parametric(graph: &RatioGraph) -> Option<CycleRatioResult> {
    let mut best_cycle = find_any_cycle(graph)?;
    let mut lambda = cycle_ratio(graph, &best_cycle);
    loop {
        match find_positive_cycle(graph, lambda) {
            None => {
                return Some(CycleRatioResult {
                    ratio: lambda,
                    cycle_edges: best_cycle,
                });
            }
            Some(cycle) => {
                let next = cycle_ratio(graph, &cycle);
                debug_assert!(next > lambda, "cycle improvement must be strict");
                lambda = next;
                best_cycle = cycle;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_cycle_when_one_exists() {
        let mut g = RatioGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(1, 2, 1, 1, None);
        g.add_edge(2, 1, 1, 1, None);
        let cycle = find_any_cycle(&g).expect("cycle exists");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let mut g = RatioGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(0, 2, 1, 1, None);
        assert_eq!(find_any_cycle(&g), None);
    }

    #[test]
    fn matches_hand_computed_max_ratio() {
        let mut g = RatioGraph::with_nodes(3);
        // Cycle A: ratio (2+6)/2 = 4. Cycle B: ratio 9/1 = 9.
        g.add_edge(0, 1, 2, 1, None);
        g.add_edge(1, 0, 6, 1, None);
        g.add_edge(1, 2, 4, 0, None);
        g.add_edge(2, 1, 5, 1, None);
        let r = max_cycle_ratio_parametric(&g).expect("cyclic");
        assert_eq!(r.ratio, Ratio::new(9, 1));
    }

    #[test]
    fn witness_cycle_achieves_reported_ratio() {
        let mut g = RatioGraph::with_nodes(4);
        g.add_edge(0, 1, 3, 1, None);
        g.add_edge(1, 2, 1, 1, None);
        g.add_edge(2, 3, 4, 1, None);
        g.add_edge(3, 0, 2, 1, None);
        g.add_edge(2, 0, 20, 1, None);
        let r = max_cycle_ratio_parametric(&g).expect("cyclic");
        let d: i64 = r.cycle_edges.iter().map(|&e| g.edges[e].delay).sum();
        let w: i64 = r.cycle_edges.iter().map(|&e| g.edges[e].tokens).sum();
        assert_eq!(Ratio::new(d, w), r.ratio);
        assert_eq!(r.ratio, Ratio::new(24, 3)); // 3 + 1 + 20 over 3 tokens
    }

    #[test]
    fn single_self_loop() {
        let mut g = RatioGraph::with_nodes(1);
        g.add_edge(0, 0, 11, 4, None);
        let r = max_cycle_ratio_parametric(&g).expect("cyclic");
        assert_eq!(r.ratio, Ratio::new(11, 4));
    }
}
