//! Elementary-cycle enumeration — the brute-force oracle.
//!
//! The paper notes that computing the minimum cycle mean by enumerating all
//! elementary cycles (Definition 3) is impractical; we implement it anyway,
//! for *small* graphs, as the ground truth against which the efficient
//! solvers ([`howard`](crate::howard), [`parametric`](crate::parametric))
//! are property-tested.

use crate::howard::CycleRatioResult;
use crate::ratio::Ratio;
use crate::ratio_graph::{EdgeIdx, RatioGraph};

/// Enumerates every elementary cycle of the graph as a list of edge
/// indices in traversal order.
///
/// Runs the simple rooted-backtracking scheme: for each root vertex `s` in
/// increasing order, explore simple paths using only vertices `>= s` and
/// record a cycle whenever an edge returns to `s`. Exponential in the worst
/// case — intended for graphs of at most a couple of dozen vertices.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn enumerate_elementary_cycles(graph: &RatioGraph) -> Vec<Vec<EdgeIdx>> {
    let n = graph.node_count;
    let mut cycles = Vec::new();
    let mut on_path = vec![false; n];
    let mut path_edges: Vec<EdgeIdx> = Vec::new();

    fn dfs(
        graph: &RatioGraph,
        root: usize,
        v: usize,
        on_path: &mut Vec<bool>,
        path_edges: &mut Vec<EdgeIdx>,
        cycles: &mut Vec<Vec<EdgeIdx>>,
    ) {
        for &e in graph.out(v) {
            let e = e as usize;
            let w = graph.edges[e].to;
            if w == root {
                let mut cycle = path_edges.clone();
                cycle.push(e);
                cycles.push(cycle);
            } else if w > root && !on_path[w] {
                on_path[w] = true;
                path_edges.push(e);
                dfs(graph, root, w, on_path, path_edges, cycles);
                path_edges.pop();
                on_path[w] = false;
            }
        }
    }

    for root in 0..n {
        on_path[root] = true;
        dfs(
            graph,
            root,
            root,
            &mut on_path,
            &mut path_edges,
            &mut cycles,
        );
        on_path[root] = false;
    }
    cycles
}

/// Outcome of the brute-force maximum-cycle-ratio computation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) enum BruteForceOutcome {
    /// The graph has no cycle at all.
    Acyclic,
    /// Some cycle has zero tokens: the ratio is unbounded (deadlock).
    ZeroTokenCycle(Vec<EdgeIdx>),
    /// The exact maximum finite ratio with a witness cycle.
    Finite(CycleRatioResult),
}

/// Exhaustive maximum cycle ratio over all elementary cycles.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn max_cycle_ratio_brute(graph: &RatioGraph) -> BruteForceOutcome {
    let cycles = enumerate_elementary_cycles(graph);
    if cycles.is_empty() {
        return BruteForceOutcome::Acyclic;
    }
    let mut best: Option<CycleRatioResult> = None;
    for cycle in cycles {
        let delay: i64 = cycle.iter().map(|&e| graph.edges[e].delay).sum();
        let tokens: i64 = cycle.iter().map(|&e| graph.edges[e].tokens).sum();
        if tokens == 0 {
            return BruteForceOutcome::ZeroTokenCycle(cycle);
        }
        let ratio = Ratio::new(delay, tokens);
        if best.as_ref().is_none_or(|b| ratio > b.ratio) {
            best = Some(CycleRatioResult {
                ratio,
                cycle_edges: cycle,
            });
        }
    }
    BruteForceOutcome::Finite(best.expect("at least one cycle"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_one_cycle() {
        let mut g = RatioGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(1, 2, 1, 1, None);
        g.add_edge(2, 0, 1, 1, None);
        let cycles = enumerate_elementary_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn complete_digraph_on_three_vertices() {
        let mut g = RatioGraph::with_nodes(3);
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    g.add_edge(a, b, 1, 1, None);
                }
            }
        }
        // K3 directed: 3 two-cycles + 2 three-cycles.
        let cycles = enumerate_elementary_cycles(&g);
        assert_eq!(cycles.len(), 5);
    }

    #[test]
    fn self_loops_are_cycles() {
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 0, 1, 1, None);
        g.add_edge(1, 1, 1, 1, None);
        assert_eq!(enumerate_elementary_cycles(&g).len(), 2);
    }

    #[test]
    fn brute_force_detects_zero_token_cycle() {
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 1, 1, 0, None);
        g.add_edge(1, 0, 1, 0, None);
        assert!(matches!(
            max_cycle_ratio_brute(&g),
            BruteForceOutcome::ZeroTokenCycle(_)
        ));
    }

    #[test]
    fn brute_force_matches_hand_computation() {
        let mut g = RatioGraph::with_nodes(3);
        g.add_edge(0, 1, 2, 1, None);
        g.add_edge(1, 0, 6, 1, None);
        g.add_edge(1, 2, 4, 0, None);
        g.add_edge(2, 1, 5, 1, None);
        match max_cycle_ratio_brute(&g) {
            BruteForceOutcome::Finite(r) => assert_eq!(r.ratio, Ratio::new(9, 1)),
            other => panic!("expected finite outcome, got {other:?}"),
        }
    }

    #[test]
    fn acyclic_outcome() {
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 1, 1, 1, None);
        assert_eq!(max_cycle_ratio_brute(&g), BruteForceOutcome::Acyclic);
    }
}
