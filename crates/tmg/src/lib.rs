//! Timed marked graphs and exact cycle-time analysis.
//!
//! This crate implements the performance model of *“A Design Methodology
//! for Compositional High-Level Synthesis of Communication-Centric SoCs”*
//! (Di Guglielmo, Pilato, Carloni — DAC 2014), Section 3: hardware systems
//! assembled from latency-insensitive processes are modeled as **timed
//! marked graphs** (TMGs), a subclass of Petri nets in which every place
//! has exactly one producer and one consumer transition.
//!
//! The throughput of such a system is the reciprocal of its **cycle time**
//! π(G): the maximum over all cycles of the ratio between total transition
//! delay and total token count. The crate provides:
//!
//! - [`TmgBuilder`]/[`Tmg`]: graph construction with the marked-graph
//!   restriction enforced by construction, plus token-game execution
//!   ([`Marking`]).
//! - [`analyze`]: deadlock detection (token-free cycle) and exact cycle
//!   time with a critical-cycle witness, via **Howard's policy-iteration
//!   algorithm** — the method the paper adopts — with exact rational
//!   arithmetic ([`Ratio`]).
//! - [`analyze_parametric`]: an independent Lawler-style solver used for
//!   cross-validation.
//! - [`simulate`]: the earliest-firing-time execution the analytic model
//!   replaces, for validating π(G) empirically.
//!
//! # Examples
//!
//! A producer and a consumer coupled by a rendezvous channel form a loop
//! whose single token paces the whole system:
//!
//! ```
//! use tmg::{analyze, TmgBuilder, Verdict, Ratio};
//!
//! let mut b = TmgBuilder::new();
//! let producer = b.add_transition("producer", 3);
//! let consumer = b.add_transition("consumer", 2);
//! b.add_place(producer, consumer, 1); // data place, one token
//! b.add_place(consumer, producer, 0); // backpressure place, empty
//! let graph = b.build()?;
//!
//! match analyze(&graph) {
//!     Verdict::Live { cycle_time, critical } => {
//!         assert_eq!(cycle_time, Ratio::new(5, 1)); // 3 + 2 cycles per item
//!         assert_eq!(critical.transitions.len(), 2);
//!     }
//!     other => panic!("unexpected verdict: {other:?}"),
//! }
//! # Ok::<(), tmg::TmgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cycles;
mod deadlock;
mod dot;
mod error;
mod graph;
mod howard;
mod ids;
mod incremental;
mod karp;
mod parametric;
mod ratio;
mod ratio_graph;
mod scc;
mod sim;

pub use analysis::{
    analyze, analyze_parametric, analyze_with_cancel, analyze_with_jobs, CriticalCycle, Verdict,
};
pub use deadlock::find_token_free_cycle;
pub use dot::to_dot;
pub use error::TmgError;
pub use graph::{Marking, Place, Tmg, TmgBuilder, Transition};
pub use ids::{PlaceId, TransitionId};
pub use incremental::IncrementalAnalysis;
pub use ratio::Ratio;
pub use sim::{simulate, SimulationOutcome};

#[cfg(test)]
mod oracle_tests {
    //! Cross-validation of the three solvers against the brute-force
    //! cycle-enumeration oracle on a deterministic family of graphs.
    use crate::cycles::{max_cycle_ratio_brute, BruteForceOutcome};
    use crate::howard::howard_on_component;
    use crate::karp::max_cycle_mean_karp;
    use crate::parametric::{find_any_cycle, max_cycle_ratio_parametric};
    use crate::ratio::Ratio;
    use crate::ratio_graph::RatioGraph;
    use crate::scc::tarjan;

    fn howard_max(g: &RatioGraph) -> Option<Ratio> {
        let scc = tarjan(g);
        let groups = scc.groups();
        let mut best: Option<Ratio> = None;
        for c in 0..groups.len() {
            if let Some(r) =
                howard_on_component(g, &scc, groups.group(c), None).expect("not cancelled")
            {
                if best.is_none_or(|b| r.ratio > b) {
                    best = Some(r.ratio);
                }
            }
        }
        best
    }

    /// Deterministic pseudo-random generator (xorshift) so the oracle
    /// family is reproducible without pulling `rand` into this crate.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_graph(seed: u64, nodes: usize, edges: usize) -> RatioGraph {
        let mut rng = XorShift(seed | 1);
        let mut g = RatioGraph::with_nodes(nodes);
        for _ in 0..edges {
            let a = rng.below(nodes as u64) as usize;
            let b = rng.below(nodes as u64) as usize;
            let delay = rng.below(20) as i64;
            // Bias tokens toward small counts but keep them positive often
            // enough that most graphs have no zero-token cycle.
            let tokens = (rng.below(3)) as i64;
            g.add_edge(a, b, delay, tokens, None);
        }
        g
    }

    #[test]
    fn howard_and_parametric_match_brute_force() {
        let mut live = 0;
        for seed in 1..200u64 {
            let g = random_graph(seed, 2 + (seed % 6) as usize, 3 + (seed % 9) as usize);
            match max_cycle_ratio_brute(&g) {
                BruteForceOutcome::Acyclic => {
                    assert_eq!(howard_max(&g), None, "seed {seed}");
                    assert!(find_any_cycle(&g).is_none(), "seed {seed}");
                }
                BruteForceOutcome::ZeroTokenCycle(_) => {
                    // Solvers require zero-token cycles to be pre-excluded;
                    // the analysis facade handles this via the deadlock
                    // check, so nothing to compare here.
                }
                BruteForceOutcome::Finite(expected) => {
                    live += 1;
                    assert_eq!(howard_max(&g), Some(expected.ratio), "seed {seed}");
                    let param = max_cycle_ratio_parametric(&g).expect("cyclic");
                    assert_eq!(param.ratio, expected.ratio, "seed {seed}");
                }
            }
        }
        assert!(
            live > 50,
            "oracle family too degenerate: {live} live graphs"
        );
    }

    #[test]
    fn karp_matches_oracle_on_unit_token_graphs() {
        for seed in 1..120u64 {
            let mut g = random_graph(
                seed.wrapping_mul(977),
                2 + (seed % 5) as usize,
                3 + (seed % 7) as usize,
            );
            for e in &mut g.edges {
                e.tokens = 1;
            }
            let brute = match max_cycle_ratio_brute(&g) {
                BruteForceOutcome::Finite(r) => Some(r.ratio),
                BruteForceOutcome::Acyclic => None,
                BruteForceOutcome::ZeroTokenCycle(_) => unreachable!("all tokens are 1"),
            };
            assert_eq!(max_cycle_mean_karp(&g), brute, "seed {seed}");
        }
    }
}
