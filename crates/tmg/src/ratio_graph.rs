//! The cycle-ratio problem representation shared by all solvers.
//!
//! A timed marked graph is lowered to a plain directed multigraph whose
//! vertices are the transitions and whose edges are the places. An edge
//! carries the *delay* of its head transition and the *token count* of its
//! place, so that for any cycle the edge-delay sum equals the
//! transition-delay sum and the edge-token sum equals the place-token sum.
//! The cycle time of the TMG is then the **maximum cycle ratio**
//! `max_c Σdelay(c) / Σtokens(c)` of this graph (the reciprocal of the
//! paper's minimum cycle mean, Definition 3).

use crate::graph::Tmg;
use crate::ids::PlaceId;
use std::sync::OnceLock;

/// Index of an edge inside a [`RatioGraph`].
pub(crate) type EdgeIdx = usize;

/// A directed edge of the cycle-ratio problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RatioEdge {
    pub from: usize,
    pub to: usize,
    /// Delay contributed when a cycle traverses this edge.
    pub delay: i64,
    /// Tokens contributed when a cycle traverses this edge (non-negative).
    pub tokens: i64,
    /// The TMG place this edge came from, when lowered from a [`Tmg`].
    pub place: Option<PlaceId>,
}

/// CSR out-adjacency of a [`RatioGraph`]: `start` has `node_count + 1`
/// offsets into `list`, which holds edge indices grouped by source vertex
/// in ascending edge-index order (identical to the order the previous
/// per-vertex `Vec<EdgeIdx>` construction pushed in).
#[derive(Debug, Clone)]
struct CsrAdjacency {
    start: Vec<u32>,
    list: Vec<u32>,
}

/// A directed multigraph with `(delay, tokens)`-weighted edges.
#[derive(Debug, Clone, Default)]
pub(crate) struct RatioGraph {
    pub node_count: usize,
    pub edges: Vec<RatioEdge>,
    /// Out-adjacency in CSR form, built lazily on first traversal and
    /// invalidated by [`Self::add_edge`]. Edge *weights* may be updated in
    /// place (the incremental analyzer reprices delays) without touching
    /// this — the adjacency depends on endpoints only.
    adjacency: OnceLock<CsrAdjacency>,
}

impl RatioGraph {
    /// Creates a graph with `node_count` vertices and no edges.
    pub fn with_nodes(node_count: usize) -> Self {
        RatioGraph {
            node_count,
            edges: Vec::new(),
            adjacency: OnceLock::new(),
        }
    }

    /// Adds an edge and returns its index.
    pub fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        delay: i64,
        tokens: i64,
        place: Option<PlaceId>,
    ) -> EdgeIdx {
        debug_assert!(from < self.node_count && to < self.node_count);
        debug_assert!(delay >= 0 && tokens >= 0);
        let idx = self.edges.len();
        self.edges.push(RatioEdge {
            from,
            to,
            delay,
            tokens,
            place,
        });
        self.adjacency = OnceLock::new();
        idx
    }

    /// Outgoing edge indices of `v`, grouped contiguously in ascending
    /// edge-index order.
    pub fn out(&self, v: usize) -> &[u32] {
        let csr = self.adjacency.get_or_init(|| {
            debug_assert!(
                self.edges.len() < u32::MAX as usize,
                "graph exceeds u32 edge space"
            );
            let mut start = vec![0u32; self.node_count + 1];
            for e in &self.edges {
                start[e.from + 1] += 1;
            }
            for i in 0..self.node_count {
                start[i + 1] += start[i];
            }
            let mut cursor: Vec<u32> = start[..self.node_count].to_vec();
            let mut list = vec![0u32; self.edges.len()];
            for (idx, e) in self.edges.iter().enumerate() {
                list[cursor[e.from] as usize] = idx as u32;
                cursor[e.from] += 1;
            }
            CsrAdjacency { start, list }
        });
        &csr.list[csr.start[v] as usize..csr.start[v + 1] as usize]
    }

    /// Lowers a TMG to its cycle-ratio graph: one vertex per transition,
    /// one edge per place. The edge carries the delay of the place's
    /// *consumer* transition, so each transition on a cycle is counted
    /// exactly once (through its unique incoming place on that cycle).
    pub fn from_tmg(graph: &Tmg) -> Self {
        let mut rg = RatioGraph::with_nodes(graph.transition_count());
        for p in graph.place_ids() {
            let place = graph.place(p);
            let delay = graph.transition(place.consumer()).delay();
            rg.add_edge(
                place.producer().index(),
                place.consumer().index(),
                i64::try_from(delay).expect("delay exceeds i64 range"),
                i64::try_from(place.initial_tokens()).expect("tokens exceed i64 range"),
                Some(p),
            );
        }
        rg
    }

    /// Sum of all edge delays; an upper bound for any cycle-delay sum.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn total_delay(&self) -> i64 {
        self.edges.iter().map(|e| e.delay).sum()
    }

    /// Sum of all edge tokens; an upper bound for any cycle-token sum.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn total_tokens(&self) -> i64 {
        self.edges.iter().map(|e| e.tokens).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TmgBuilder;

    #[test]
    fn lowering_counts_consumer_delays() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 3);
        let c = b.add_transition("c", 2);
        b.add_place(a, c, 1);
        b.add_place(c, a, 0);
        let g = b.build().expect("valid");
        let rg = RatioGraph::from_tmg(&g);
        assert_eq!(rg.node_count, 2);
        assert_eq!(rg.edges.len(), 2);
        // Edge from a to c carries c's delay.
        let e0 = rg.edges[0];
        assert_eq!((e0.from, e0.to, e0.delay, e0.tokens), (0, 1, 2, 1));
        // Edge from c to a carries a's delay.
        let e1 = rg.edges[1];
        assert_eq!((e1.from, e1.to, e1.delay, e1.tokens), (1, 0, 3, 0));
        // Around the unique cycle: delays sum to 5, tokens to 1 — so the
        // cycle ratio (cycle time) is 5.
        assert_eq!(rg.total_delay(), 5);
        assert_eq!(rg.total_tokens(), 1);
    }
}
