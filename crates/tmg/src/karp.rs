//! Karp's algorithm for the maximum cycle *mean*.
//!
//! Karp's dynamic program solves the special case of the cycle-ratio
//! problem in which every edge contributes exactly one token — i.e. the
//! classical maximum mean cycle. The crate keeps it as an independent
//! O(V·E) cross-check for the general solvers on unit-token graphs, in the
//! spirit of the algorithm study the paper cites (Dasdan–Irani–Gupta).

use crate::ratio::Ratio;
use crate::ratio_graph::RatioGraph;
use crate::scc::tarjan;

/// Maximum mean cycle (mean = Σdelay / edge count) over the whole graph,
/// computed with Karp's theorem per strongly connected component.
///
/// Returns `None` if the graph is acyclic. Edge token counts are ignored —
/// this is only meaningful as a cross-check on graphs where every token
/// count is 1.
#[must_use]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn max_cycle_mean_karp(graph: &RatioGraph) -> Option<Ratio> {
    let scc = tarjan(graph);
    let groups = scc.groups();
    let mut best: Option<Ratio> = None;
    for c in 0..groups.len() {
        if let Some(mean) = karp_on_component(graph, &scc.component, groups.group(c)) {
            if best.is_none_or(|b| mean > b) {
                best = Some(mean);
            }
        }
    }
    best
}

fn karp_on_component(graph: &RatioGraph, component: &[usize], members: &[u32]) -> Option<Ratio> {
    let k = members.len();
    let comp = component[members[0] as usize];
    let mut local = vec![usize::MAX; graph.node_count];
    for (i, &v) in members.iter().enumerate() {
        local[v as usize] = i;
    }
    let internal: Vec<_> = graph
        .edges
        .iter()
        .filter(|e| component[e.from] == comp && component[e.to] == comp)
        .collect();
    if internal.is_empty() {
        return None;
    }

    const NEG_INF: i64 = i64::MIN / 4;
    // dp[k][v] = maximum delay of a walk with exactly k edges from the
    // source (member 0) to v.
    let mut dp = vec![vec![NEG_INF; k]; k + 1];
    dp[0][0] = 0;
    for step in 1..=k {
        for e in &internal {
            let u = local[e.from];
            let v = local[e.to];
            if dp[step - 1][u] > NEG_INF {
                let cand = dp[step - 1][u] + e.delay;
                if cand > dp[step][v] {
                    dp[step][v] = cand;
                }
            }
        }
    }

    // Karp: max over v of min over 0<=j<k of (dp[k][v] - dp[j][v])/(k - j),
    // restricted to v with dp[k][v] finite.
    let mut best: Option<Ratio> = None;
    for v in 0..k {
        if dp[k][v] <= NEG_INF {
            continue;
        }
        let mut v_min: Option<Ratio> = None;
        for (j, row) in dp.iter().enumerate().take(k) {
            if row[v] <= NEG_INF {
                continue;
            }
            let num = dp[k][v] - row[v];
            let den = (k - j) as i64;
            // Walk means can be negative in general graphs, but delays are
            // non-negative here so the difference is too.
            let mean = Ratio::new(num.max(0), den);
            if v_min.is_none_or(|m| mean < m) {
                v_min = Some(mean);
            }
        }
        if let Some(m) = v_min {
            if best.is_none_or(|b| m > b) {
                best = Some(m);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_cycle() {
        let mut g = RatioGraph::with_nodes(2);
        g.add_edge(0, 1, 3, 1, None);
        g.add_edge(1, 0, 5, 1, None);
        // Mean = (3 + 5) / 2 = 4.
        assert_eq!(max_cycle_mean_karp(&g), Some(Ratio::new(4, 1)));
    }

    #[test]
    fn picks_the_heavier_loop() {
        let mut g = RatioGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(1, 0, 1, 1, None); // mean 1
        g.add_edge(1, 2, 10, 1, None);
        g.add_edge(2, 1, 2, 1, None); // mean 6
        assert_eq!(max_cycle_mean_karp(&g), Some(Ratio::new(6, 1)));
    }

    #[test]
    fn acyclic_returns_none() {
        let mut g = RatioGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1, None);
        g.add_edge(1, 2, 1, 1, None);
        assert_eq!(max_cycle_mean_karp(&g), None);
    }

    #[test]
    fn self_loop_mean_is_its_delay() {
        let mut g = RatioGraph::with_nodes(1);
        g.add_edge(0, 0, 9, 1, None);
        assert_eq!(max_cycle_mean_karp(&g), Some(Ratio::new(9, 1)));
    }

    #[test]
    fn multiple_components() {
        let mut g = RatioGraph::with_nodes(4);
        g.add_edge(0, 1, 2, 1, None);
        g.add_edge(1, 0, 2, 1, None); // mean 2
        g.add_edge(2, 3, 8, 1, None);
        g.add_edge(3, 2, 4, 1, None); // mean 6
        g.add_edge(1, 2, 100, 1, None); // bridge, not on any cycle
        assert_eq!(max_cycle_mean_karp(&g), Some(Ratio::new(6, 1)));
    }
}
