//! Error type for timed-marked-graph construction and execution.

use crate::ids::TransitionId;
use std::error::Error;
use std::fmt;

/// Errors returned by TMG construction and firing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TmgError {
    /// The builder contained no transitions.
    Empty,
    /// [`Marking::fire`](crate::Marking::fire) was called on a transition
    /// with an empty input place.
    NotEnabled(TransitionId),
}

impl fmt::Display for TmgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmgError::Empty => write!(f, "timed marked graph has no transitions"),
            TmgError::NotEnabled(t) => {
                write!(f, "transition {t} is not enabled under the current marking")
            }
        }
    }
}

impl Error for TmgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_punctuation() {
        let msg = TmgError::Empty.to_string();
        assert!(msg.starts_with(char::is_lowercase));
        assert!(!msg.ends_with('.'));
        let msg = TmgError::NotEnabled(TransitionId::from_index(4)).to_string();
        assert!(msg.contains("t4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<TmgError>();
    }
}
