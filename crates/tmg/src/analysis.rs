//! System-level performance analysis of a timed marked graph.
//!
//! This is the entry point ERMES calls instead of simulating (Section 3 of
//! the paper): it classifies the graph as deadlocked (token-free cycle),
//! live (finite cycle time with a critical cycle), or acyclic, using
//! Howard's algorithm with the parametric solver as a safety fallback.

use crate::deadlock::find_token_free_cycle;
use crate::graph::Tmg;
use crate::howard::{howard_on_component, CycleRatioResult};
use crate::ids::{PlaceId, TransitionId};
use crate::parametric::max_cycle_ratio_parametric;
use crate::ratio::Ratio;
use crate::ratio_graph::RatioGraph;
use crate::scc::tarjan;

/// A critical cycle: the cycle whose delay-to-token ratio equals the cycle
/// time of the graph. Improving the system requires shortening a delay on
/// this cycle (Section 5's timing optimization targets exactly these
/// transitions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalCycle {
    /// Places along the cycle, in traversal order.
    pub places: Vec<PlaceId>,
    /// Transitions along the cycle (the consumers of `places`), in the
    /// same order.
    pub transitions: Vec<TransitionId>,
    /// Total transition delay around the cycle.
    pub delay_sum: u64,
    /// Total tokens around the cycle (strictly positive for live graphs).
    pub token_sum: u64,
}

/// Outcome of [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A token-free cycle exists: the system will deadlock regardless of
    /// timing. Carries the witness cycle's places.
    Deadlock {
        /// Places of one token-free cycle.
        witness: Vec<PlaceId>,
    },
    /// Every cycle carries tokens: the system runs forever with the given
    /// cycle time (Definition 2) achieved on the critical cycle.
    Live {
        /// The cycle time π(G): average time between consecutive firings
        /// of any transition (strongly connected graphs).
        cycle_time: Ratio,
        /// One cycle achieving the minimum cycle mean.
        critical: CriticalCycle,
    },
    /// The graph has no cycles; steady-state throughput is unconstrained
    /// by feedback. (Does not occur for the paper's process networks, whose
    /// processes always loop.)
    Acyclic,
}

impl Verdict {
    /// The cycle time, if the system is live.
    #[must_use]
    pub fn cycle_time(&self) -> Option<Ratio> {
        match self {
            Verdict::Live { cycle_time, .. } => Some(*cycle_time),
            _ => None,
        }
    }

    /// True when the verdict is [`Verdict::Deadlock`].
    #[must_use]
    pub fn is_deadlock(&self) -> bool {
        matches!(self, Verdict::Deadlock { .. })
    }

    /// The throughput 1/π(G), if the system is live and π(G) > 0.
    #[must_use]
    pub fn throughput(&self) -> Option<Ratio> {
        self.cycle_time().and_then(Ratio::recip)
    }
}

/// Analyzes a timed marked graph: deadlock check, then exact cycle time
/// with a critical-cycle witness.
///
/// # Examples
///
/// ```
/// use tmg::{analyze, TmgBuilder, Verdict, Ratio};
/// let mut b = TmgBuilder::new();
/// let a = b.add_transition("producer", 3);
/// let c = b.add_transition("consumer", 2);
/// b.add_place(a, c, 1);
/// b.add_place(c, a, 0);
/// let g = b.build()?;
/// match analyze(&g) {
///     Verdict::Live { cycle_time, .. } => assert_eq!(cycle_time, Ratio::new(5, 1)),
///     other => panic!("expected live, got {other:?}"),
/// }
/// # Ok::<(), tmg::TmgError>(())
/// ```
#[must_use]
pub fn analyze(graph: &Tmg) -> Verdict {
    analyze_with_jobs(graph, 1)
}

/// [`analyze`] with the per-SCC Howard solves spread over up to `jobs`
/// worker threads (`0` = all hardware threads, `1` = inline/serial).
///
/// Strongly connected components share no cycles, so each is solved
/// independently; the per-component results are then reduced **in
/// component order** with the same strictly-greater comparison as the
/// serial loop. The verdict — cycle time *and* critical-cycle witness —
/// is therefore bit-identical at any thread count.
#[must_use]
pub fn analyze_with_jobs(graph: &Tmg, jobs: usize) -> Verdict {
    analyze_inner(graph, jobs, None).expect("no cancel token, cannot be cancelled")
}

/// [`analyze_with_jobs`], but cooperatively cancellable: every per-SCC
/// Howard solve polls `cancel` between policy-improvement rounds, so a
/// fired token stops the analysis within one round per in-flight
/// component rather than at solve completion.
///
/// On the `Ok` path the verdict is bit-identical to
/// [`analyze_with_jobs`] at any thread count.
///
/// # Errors
///
/// [`Cancelled`](parx::Cancelled) when the token fired before the
/// analysis finished. A cancelled analysis never falls back to the
/// (uncancellable) parametric solver.
pub fn analyze_with_cancel(
    graph: &Tmg,
    jobs: usize,
    cancel: &parx::CancelToken,
) -> Result<Verdict, parx::Cancelled> {
    analyze_inner(graph, jobs, Some(cancel))
}

fn analyze_inner(
    graph: &Tmg,
    jobs: usize,
    cancel: Option<&parx::CancelToken>,
) -> Result<Verdict, parx::Cancelled> {
    let _span = trace::span("analysis");
    if let Some(witness) = find_token_free_cycle(graph) {
        return Ok(Verdict::Deadlock { witness });
    }
    let rg = RatioGraph::from_tmg(graph);
    let scc = tarjan(&rg);
    let groups = scc.groups();
    trace::attr("sccs", groups.len());
    // Fan the per-component solves out by index over the flat grouping —
    // one id array instead of one `Vec` per component. Each worker thread
    // reuses its thread-local Howard scratch arena across every component
    // it drains from the queue.
    let indices: Vec<u32> = (0..groups.len() as u32).collect();
    let results = parx::par_map(jobs, &indices, |i, &c| {
        let _span = trace::span("howard");
        trace::attr("scc", i);
        let members = groups.group(c as usize);
        trace::attr("nodes", members.len());
        howard_on_component(&rg, &scc, members, cancel)
    });
    let mut best: Option<CycleRatioResult> = None;
    for r in results {
        if let Some(r) = r? {
            if best.as_ref().is_none_or(|b| r.ratio > b.ratio) {
                best = Some(r);
            }
        }
    }
    // Fallback: if Howard declined (iteration cap) we still owe an exact
    // answer. The parametric solver is slower but unconditional — poll
    // the token once more before committing to it.
    if best.is_none() && crate::parametric::find_any_cycle(&rg).is_some() {
        if let Some(token) = cancel {
            token.check()?;
        }
        best = max_cycle_ratio_parametric(&rg);
    }
    Ok(match best {
        None => Verdict::Acyclic,
        Some(result) => {
            let places: Vec<PlaceId> = result
                .cycle_edges
                .iter()
                .map(|&e| rg.edges[e].place.expect("edge lowered from a place"))
                .collect();
            let transitions: Vec<TransitionId> =
                places.iter().map(|&p| graph.place(p).consumer()).collect();
            let delay_sum = transitions
                .iter()
                .map(|&t| graph.transition(t).delay())
                .sum();
            let token_sum = places
                .iter()
                .map(|&p| graph.place(p).initial_tokens())
                .sum();
            Verdict::Live {
                cycle_time: result.ratio,
                critical: CriticalCycle {
                    places,
                    transitions,
                    delay_sum,
                    token_sum,
                },
            }
        }
    })
}

/// Exact cycle time computed with the parametric baseline solver instead
/// of Howard's algorithm. Exposed for cross-validation and benchmarking.
#[must_use]
pub fn analyze_parametric(graph: &Tmg) -> Verdict {
    if let Some(witness) = find_token_free_cycle(graph) {
        return Verdict::Deadlock { witness };
    }
    let rg = RatioGraph::from_tmg(graph);
    if crate::parametric::find_any_cycle(&rg).is_none() {
        return Verdict::Acyclic;
    }
    let result = max_cycle_ratio_parametric(&rg).expect("graph is cyclic");
    let places: Vec<PlaceId> = result
        .cycle_edges
        .iter()
        .map(|&e| rg.edges[e].place.expect("edge lowered from a place"))
        .collect();
    let transitions: Vec<TransitionId> =
        places.iter().map(|&p| graph.place(p).consumer()).collect();
    Verdict::Live {
        cycle_time: result.ratio,
        critical: CriticalCycle {
            delay_sum: transitions
                .iter()
                .map(|&t| graph.transition(t).delay())
                .sum(),
            token_sum: places
                .iter()
                .map(|&p| graph.place(p).initial_tokens())
                .sum(),
            places,
            transitions,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TmgBuilder;

    #[test]
    fn deadlock_wins_over_cycle_time() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        let c = b.add_transition("c", 1);
        b.add_place(a, c, 0);
        b.add_place(c, a, 0);
        // A live self-loop elsewhere does not mask the deadlock.
        let d = b.add_transition("d", 5);
        b.add_place(d, d, 1);
        let g = b.build().expect("valid");
        assert!(analyze(&g).is_deadlock());
    }

    #[test]
    fn live_ring_reports_exact_cycle_time_and_critical_cycle() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 3);
        let c = b.add_transition("c", 2);
        b.add_place(a, c, 1);
        b.add_place(c, a, 0);
        let g = b.build().expect("valid");
        match analyze(&g) {
            Verdict::Live {
                cycle_time,
                critical,
            } => {
                assert_eq!(cycle_time, Ratio::new(5, 1));
                assert_eq!(critical.delay_sum, 5);
                assert_eq!(critical.token_sum, 1);
                assert_eq!(critical.places.len(), 2);
            }
            other => panic!("expected live, got {other:?}"),
        }
    }

    #[test]
    fn acyclic_graph() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 3);
        let c = b.add_transition("c", 2);
        b.add_place(a, c, 1);
        let g = b.build().expect("valid");
        assert_eq!(analyze(&g), Verdict::Acyclic);
    }

    #[test]
    fn throughput_is_reciprocal() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 4);
        b.add_place(a, a, 2);
        let g = b.build().expect("valid");
        let v = analyze(&g);
        assert_eq!(v.cycle_time(), Some(Ratio::new(2, 1)));
        assert_eq!(v.throughput(), Some(Ratio::new(1, 2)));
    }

    #[test]
    fn parametric_agrees_with_howard() {
        let mut b = TmgBuilder::new();
        let t: Vec<_> = (0..5)
            .map(|i| b.add_transition(format!("t{i}"), (i as u64) * 3 + 1))
            .collect();
        for i in 0..5 {
            b.add_place(t[i], t[(i + 1) % 5], u64::from(i == 0));
        }
        b.add_place(t[2], t[0], 1);
        b.add_place(t[0], t[2], 1);
        let g = b.build().expect("valid");
        assert_eq!(
            analyze(&g).cycle_time(),
            analyze_parametric(&g).cycle_time()
        );
    }

    #[test]
    fn parallel_analysis_is_bit_identical() {
        // A dozen disjoint rings of distinct sizes/delays → a dozen SCCs
        // with distinct ratios, plus cross-SCC edges to keep Tarjan busy.
        let mut b = TmgBuilder::new();
        let mut firsts = Vec::new();
        for k in 0..12u64 {
            let n = 3 + (k as usize % 4);
            let t: Vec<_> = (0..n)
                .map(|i| b.add_transition(format!("r{k}_{i}"), k + i as u64 + 1))
                .collect();
            for i in 0..n {
                b.add_place(t[i], t[(i + 1) % n], u64::from(i == 0) + k % 2);
            }
            firsts.push(t[0]);
        }
        for pair in firsts.windows(2) {
            b.add_place(pair[0], pair[1], 1);
        }
        let g = b.build().expect("valid");
        let serial = analyze_with_jobs(&g, 1);
        assert!(serial.cycle_time().is_some(), "rings are live");
        for jobs in [2, 3, 4, 8, 0] {
            assert_eq!(analyze_with_jobs(&g, jobs), serial, "jobs = {jobs}");
        }
        assert_eq!(analyze(&g), serial);
    }

    #[test]
    fn cancellable_analysis_matches_plain_analysis_when_live() {
        use parx::{CancelReason, CancelToken};
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 3);
        let c = b.add_transition("c", 2);
        b.add_place(a, c, 1);
        b.add_place(c, a, 0);
        let g = b.build().expect("valid");
        let token = CancelToken::new();
        let verdict = analyze_with_cancel(&g, 1, &token).expect("token is live");
        assert_eq!(verdict, analyze(&g), "same verdict, bit-identical");
        token.cancel(CancelReason::Deadline);
        let err = analyze_with_cancel(&g, 1, &token).expect_err("token fired");
        assert_eq!(err.reason, CancelReason::Deadline);
    }

    #[test]
    fn critical_cycle_is_closed() {
        let mut b = TmgBuilder::new();
        let t: Vec<_> = (0..4)
            .map(|i| b.add_transition(format!("t{i}"), 2 * (i as u64) + 1))
            .collect();
        for i in 0..4 {
            b.add_place(t[i], t[(i + 1) % 4], u64::from(i % 2 == 0));
        }
        let g = b.build().expect("valid");
        match analyze(&g) {
            Verdict::Live { critical, .. } => {
                for (i, &p) in critical.places.iter().enumerate() {
                    let next = critical.places[(i + 1) % critical.places.len()];
                    assert_eq!(g.place(p).consumer(), g.place(next).producer());
                }
            }
            other => panic!("expected live, got {other:?}"),
        }
    }
}
