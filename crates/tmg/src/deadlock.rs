//! Structural deadlock detection.
//!
//! A timed marked graph deadlocks if and only if it contains a cycle whose
//! places hold no tokens: the token count along a cycle is invariant under
//! firing, so a token-free cycle can never enable its transitions, and
//! conversely every cycle carrying a token keeps circulating it. This is
//! the check ERMES uses to reject channel orderings that would hang the
//! synthesized SoC (Section 2's motivating deadlock).

use crate::graph::Tmg;
use crate::ids::PlaceId;

/// Searches for a token-free cycle.
///
/// Returns the places of one such cycle (in traversal order) if the graph
/// can deadlock, or `None` if every cycle carries at least one token.
///
/// # Examples
///
/// ```
/// use tmg::{TmgBuilder, find_token_free_cycle};
/// let mut b = TmgBuilder::new();
/// let a = b.add_transition("a", 1);
/// let c = b.add_transition("c", 1);
/// b.add_place(a, c, 0);
/// b.add_place(c, a, 0);
/// let g = b.build()?;
/// // Two processes each waiting for the other: deadlock.
/// assert!(find_token_free_cycle(&g).is_some());
/// # Ok::<(), tmg::TmgError>(())
/// ```
#[must_use]
pub fn find_token_free_cycle(graph: &Tmg) -> Option<Vec<PlaceId>> {
    // DFS over the subgraph restricted to empty places, iterative to cope
    // with 10k-process systems.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = graph.transition_count();
    let mut color = vec![WHITE; n];
    // parent_place[v] = empty place through which the DFS entered v.
    let mut parent_place: Vec<Option<PlaceId>> = vec![None; n];
    let mut parent_node: Vec<usize> = vec![usize::MAX; n];

    for start in 0..n {
        if color[start] != WHITE {
            continue;
        }
        // Frame: (vertex, position into its output place list).
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = GRAY;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let out = graph.output_places(crate::ids::TransitionId::from_index(v));
            if *pos < out.len() {
                let pid = out[*pos];
                *pos += 1;
                let place = graph.place(pid);
                if place.initial_tokens() > 0 {
                    continue;
                }
                let w = place.consumer().index();
                match color[w] {
                    WHITE => {
                        color[w] = GRAY;
                        parent_place[w] = Some(pid);
                        parent_node[w] = v;
                        frames.push((w, 0));
                    }
                    GRAY => {
                        // Back edge closes a token-free cycle: w .. v, pid.
                        let mut cycle = vec![pid];
                        let mut cur = v;
                        while cur != w {
                            cycle.push(parent_place[cur].expect("gray node has parent"));
                            cur = parent_node[cur];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[v] = BLACK;
                frames.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TmgBuilder;

    #[test]
    fn token_on_cycle_prevents_deadlock() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        let c = b.add_transition("c", 1);
        b.add_place(a, c, 1);
        b.add_place(c, a, 0);
        let g = b.build().expect("valid");
        assert_eq!(find_token_free_cycle(&g), None);
    }

    #[test]
    fn empty_two_cycle_is_reported() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        let c = b.add_transition("c", 1);
        let p0 = b.add_place(a, c, 0);
        let p1 = b.add_place(c, a, 0);
        let g = b.build().expect("valid");
        let cycle = find_token_free_cycle(&g).expect("deadlock expected");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&p0) && cycle.contains(&p1));
    }

    #[test]
    fn witness_cycle_is_closed_and_token_free() {
        // Diamond with one empty cycle buried among token-carrying places.
        let mut b = TmgBuilder::new();
        let t: Vec<_> = (0..4)
            .map(|i| b.add_transition(format!("t{i}"), 1))
            .collect();
        b.add_place(t[0], t[1], 1);
        b.add_place(t[1], t[0], 1);
        b.add_place(t[1], t[2], 0);
        b.add_place(t[2], t[3], 0);
        b.add_place(t[3], t[1], 0);
        let g = b.build().expect("valid");
        let cycle = find_token_free_cycle(&g).expect("deadlock expected");
        assert_eq!(cycle.len(), 3);
        // Check closure: consumer of each place is producer of the next.
        for (i, &p) in cycle.iter().enumerate() {
            let next = cycle[(i + 1) % cycle.len()];
            assert_eq!(g.place(p).consumer(), g.place(next).producer());
            assert_eq!(g.place(p).initial_tokens(), 0);
        }
    }

    #[test]
    fn empty_self_loop_is_deadlock() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        let p = b.add_place(a, a, 0);
        let g = b.build().expect("valid");
        assert_eq!(find_token_free_cycle(&g), Some(vec![p]));
    }

    #[test]
    fn acyclic_graph_never_deadlocks_structurally() {
        let mut b = TmgBuilder::new();
        let a = b.add_transition("a", 1);
        let c = b.add_transition("c", 1);
        b.add_place(a, c, 0);
        let g = b.build().expect("valid");
        assert_eq!(find_token_free_cycle(&g), None);
    }
}
