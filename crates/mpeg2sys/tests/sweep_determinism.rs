//! Determinism and cache-correctness of the parallel exploration engine
//! on the full MPEG-2 case study (26 processes / 60 channels).
//!
//! The sweep must return bit-identical exact cycle times and areas at
//! any thread count, and the shared cache must not change any result.

use ermes::{
    analyze_design, analyze_design_with_jobs, pareto_sweep_with, EngineCache, ExplorationConfig,
    ExploreOptions, SweepOptions,
};
use mpeg2sys::m2_design;

#[test]
fn mpeg2_analysis_is_bit_identical_across_thread_counts() {
    let (design, _) = m2_design();
    let serial = analyze_design(&design);
    assert!(serial.cycle_time().is_some(), "M2 is live");
    for jobs in [2, 4, 0] {
        assert_eq!(
            analyze_design_with_jobs(&design, jobs),
            serial,
            "jobs = {jobs}"
        );
    }
}

#[test]
fn mpeg2_sweep_is_bit_identical_and_caches() {
    let (design, _) = m2_design();
    let base = analyze_design(&design)
        .cycle_time()
        .expect("M2 is live")
        .to_f64();
    // A short ladder bracketing the M2 cycle time.
    let targets: Vec<u64> = [0.5, 0.9, 1.1, 1.5]
        .iter()
        .map(|f| (base * f) as u64)
        .collect();
    let serial = pareto_sweep_with(
        design.clone(),
        &targets,
        &SweepOptions {
            jobs: 1,
            memoize: true,
        },
    )
    .expect("sweeps");
    assert!(!serial.front.is_empty());
    let parallel = pareto_sweep_with(
        design.clone(),
        &targets,
        &SweepOptions {
            jobs: 4,
            memoize: true,
        },
    )
    .expect("sweeps");
    assert_eq!(
        parallel.front, serial.front,
        "exact Ratio cycle times match"
    );
    assert!(
        serial.cache.analysis_misses > 0,
        "sweep ran the analysis: {:?}",
        serial.cache
    );
}

/// The warm-started bounded-variable ILP engine and the frozen seed
/// engine must walk bit-identical exploration traces on the full
/// MPEG-2 case study — the instance class the solver overhaul targets.
///
/// Selections must match too, with one certified exception: when the
/// selection ILP has several optima of bitwise-equal area, each engine
/// deterministically returns the first one its search order reaches,
/// and the orders legitimately differ (DFS vs best-first). Such a tie
/// is accepted only after proving the traces are bit-identical and
/// both final designs report bitwise-equal area and cycle time — the
/// user-visible outputs (Fig. 6 traces, sweep Pareto points) carry no
/// difference. At 1,800,000 cycles the ladder hits exactly this case.
#[test]
fn mpeg2_exploration_engines_are_bit_identical() {
    let (design, _) = m2_design();
    for target in [900_000u64, 1_200_000, 1_500_000, 1_800_000, 2_400_000] {
        let mut config = ExplorationConfig::with_target(target);
        config.strategy = ermes::OptStrategy::Exact;
        let new_engine = ermes::explore(design.clone(), config).expect("explores");
        config.strategy = ermes::OptStrategy::ExactSeed;
        let seed = ermes::explore(design.clone(), config).expect("explores");
        assert_eq!(
            new_engine.iterations, seed.iterations,
            "target = {target}: engine changed the trace"
        );
        assert_eq!(
            new_engine.best_index, seed.best_index,
            "target = {target}: engine changed the best point"
        );
        if new_engine.design.selection() != seed.design.selection() {
            // Certified alternate optimum: every visible number must
            // still be bit-identical.
            assert_eq!(
                new_engine.design.area().to_bits(),
                seed.design.area().to_bits(),
                "target = {target}: differing selections must tie exactly on area"
            );
        }
    }
}

#[test]
fn mpeg2_cached_exploration_matches_fresh() {
    let (design, _) = m2_design();
    let config = ExplorationConfig::with_target(2_500_000);
    let fresh = ermes::explore(design.clone(), config).expect("explores");
    let cache = EngineCache::new();
    let opts = ExploreOptions {
        jobs: 2,
        cache: Some(&cache),
        cancel: None,
    };
    let cached = ermes::explore_with(design, config, &opts).expect("explores");
    assert_eq!(cached.iterations, fresh.iterations);
    assert_eq!(cached.design.selection(), fresh.design.selection());
}
