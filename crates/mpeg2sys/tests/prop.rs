//! Property tests for the functional kernels: transform/quantizer/entropy
//! round trips on arbitrary data.

use mpeg2sys::{
    dequantize, forward_dct, inverse_dct, quantize, run_length_decode, run_length_encode,
    zigzag_scan, zigzag_unscan, BitReader, BitWriter, Block,
};
use proptest::prelude::*;

fn arb_pixel_block() -> impl Strategy<Value = Block> {
    proptest::collection::vec(-255i16..=255, 64).prop_map(|v| {
        let mut b = [0i16; 64];
        b.copy_from_slice(&v);
        b
    })
}

fn arb_sparse_block() -> impl Strategy<Value = Block> {
    proptest::collection::vec((0usize..64, -600i16..=600), 0..12).prop_map(|entries| {
        let mut b = [0i16; 64];
        for (i, v) in entries {
            b[i] = v;
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The integer-rounded DCT inverts to within ±1 per sample.
    #[test]
    fn dct_roundtrip_is_tight(block in arb_pixel_block()) {
        let back = inverse_dct(&forward_dct(&block));
        for (a, b) in block.iter().zip(&back) {
            prop_assert!((a - b).abs() <= 1, "{a} vs {b}");
        }
    }

    /// Quantization reconstruction error is bounded by one step.
    #[test]
    fn quant_roundtrip_bounded(block in arb_pixel_block(), qscale in 1u16..=31) {
        let back = dequantize(&quantize(&block, qscale), qscale);
        for (i, (a, b)) in block.iter().zip(&back).enumerate() {
            let step = (i32::from(mpeg2sys::INTRA_MATRIX[i]) * i32::from(qscale) / 16).max(1);
            prop_assert!(
                (i32::from(*a) - i32::from(*b)).abs() <= step + 1,
                "coeff {i}: {a} vs {b} (step {step})"
            );
        }
    }

    /// Zig-zag is a bijection.
    #[test]
    fn zigzag_roundtrip(block in arb_pixel_block()) {
        prop_assert_eq!(zigzag_unscan(&zigzag_scan(&block)), block);
    }

    /// Run-length coding is lossless on any block.
    #[test]
    fn rle_roundtrip(block in arb_sparse_block()) {
        prop_assert_eq!(run_length_decode(&run_length_encode(&block)), block);
    }

    /// Entropy coding decodes to the exact block, and concatenated blocks
    /// stay in sync.
    #[test]
    fn vlc_roundtrip(blocks in proptest::collection::vec(arb_sparse_block(), 1..6)) {
        let mut w = BitWriter::new();
        for b in &blocks {
            mpeg2sys::encode_block(&mut w, b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for b in &blocks {
            prop_assert_eq!(mpeg2sys::decode_block(&mut r).expect("well-formed"), *b);
        }
    }

    /// Exp-Golomb round trips arbitrary signed values.
    #[test]
    fn exp_golomb_roundtrip(values in proptest::collection::vec(-5000i32..5000, 0..40)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.get_se(), Ok(v));
        }
    }
}
