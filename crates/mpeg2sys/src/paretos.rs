//! Per-stage Pareto sets and the M1/M2 anchor implementations.
//!
//! The paper derives, with the compositional-DSE flow of Liu–Carloni
//! \[11\], 171 Pareto-optimal micro-architectures across the 26 processes,
//! and anchors its experiments on two system implementations:
//!
//! - **M1** — fastest computation everywhere: CT 1,906 KCycles, 2.267 mm²;
//! - **M2** — performance traded for area: CT 3,597 KCycles, 1.562 mm².
//!
//! We reconstruct the Pareto sets with the HLS surrogate: each stage gets
//! a kernel sized from its real computational role (per-pixel stages
//! iterate over the 84,480 luma pixels of a 352×240 frame, per-block
//! stages over the 1,980 blocks, control stages over the 330 macroblocks)
//! and is swept over an MPEG-2-specific knob grid (unrolling ≤ 4, all
//! sharing levels, optional pipelining at II = 8 — the modest parallelism
//! a 45 nm ASIC flow affords at 1 GHz).

use crate::topology::{Mpeg2Topology, Stage, FRAME_HEIGHT, FRAME_WIDTH, MACROBLOCKS};
use ermes::Design;
use hlsim::{synthesize, HlsKnobs, KernelSpec, MicroArch, ParetoSet, SharingLevel};

/// Luma pixels per frame: the trip count of per-pixel stages.
const PIXELS: u64 = FRAME_WIDTH * FRAME_HEIGHT;
/// 8×8 blocks per frame (luma + chroma, 4:2:0).
const BLOCKS: u64 = MACROBLOCKS * 6;

/// The MPEG-2-specific knob grid (Section 6's "loop pipelining, loop
/// unrolling, ..." applied with realistic resource limits).
fn mpeg2_knob_grid() -> Vec<HlsKnobs> {
    let mut grid = Vec::new();
    for unroll in [1u64, 2] {
        for sharing in SharingLevel::ALL {
            for ii in [
                None,
                Some(12),
                Some(16),
                Some(18),
                Some(20),
                Some(24),
                Some(28),
                Some(32),
                Some(34),
                Some(36),
                Some(40),
                Some(44),
                Some(48),
                Some(64),
                Some(96),
            ] {
                grid.push(HlsKnobs {
                    unroll,
                    pipeline_ii: ii,
                    sharing,
                });
            }
        }
    }
    grid
}

/// Kernel description of one encoder stage.
fn stage_kernel(stage: Stage) -> KernelSpec {
    // (ops per iteration, trip count, base area, per-unit area) — sized
    // from each stage's computational role; areas in mm² (45 nm).
    let (ops, trips, base, per_op) = match stage {
        // Per-pixel datapath heavyweights.
        Stage::MeCoarse => (48, PIXELS, 0.11553, 0.01755),
        Stage::MeFine => (32, PIXELS, 0.08887, 0.01466),
        Stage::McPredict => (12, PIXELS, 0.05332, 0.00912),
        Stage::Residual => (6, PIXELS, 0.03110, 0.00512),
        Stage::DctLuma => (16, PIXELS, 0.07110, 0.01156),
        Stage::DctChroma => (16, PIXELS / 2, 0.04888, 0.00777),
        Stage::Idct => (16, PIXELS + PIXELS / 2, 0.07554, 0.01245),
        Stage::Recon => (4, PIXELS + PIXELS / 2, 0.02666, 0.00421),
        // Per-coefficient stages.
        Stage::QuantLuma => (6, PIXELS, 0.03555, 0.00556),
        Stage::QuantChroma => (6, PIXELS / 2, 0.02666, 0.00377),
        Stage::Iquant => (5, PIXELS + PIXELS / 2, 0.03110, 0.00467),
        Stage::ZigzagLuma => (2, PIXELS, 0.01777, 0.00244),
        Stage::ZigzagChroma => (2, PIXELS / 2, 0.01333, 0.00177),
        Stage::RleLuma => (3, PIXELS, 0.02222, 0.00289),
        Stage::RleChroma => (3, PIXELS / 2, 0.01777, 0.00200),
        // Per-block / per-macroblock stages.
        Stage::VlcMb => (64, BLOCKS, 0.05332, 0.00666),
        Stage::VlcHeader => (32, MACROBLOCKS, 0.01777, 0.00200),
        Stage::ModeDecision => (96, MACROBLOCKS, 0.02666, 0.00333),
        Stage::ActStats => (24, BLOCKS, 0.02222, 0.00289),
        // Stores stream whole frames.
        Stage::CurStore => (4, PIXELS / 4, 0.04444, 0.00400),
        Stage::RefStore => (4, PIXELS / 4, 0.04444, 0.00400),
        Stage::ReconStore => (4, PIXELS / 4, 0.04444, 0.00400),
        Stage::MbSplit => (8, MACROBLOCKS * 24, 0.02222, 0.00267),
        // Control stages.
        Stage::InputCtrl => (16, MACROBLOCKS, 0.01333, 0.00156),
        Stage::GopCtrl => (64, 8, 0.00889, 0.00111),
        Stage::RateCtrl => (48, MACROBLOCKS, 0.01777, 0.00223),
    };
    KernelSpec::new(stage.name(), ops, trips, base, per_op)
}

/// Pareto set of one stage under the MPEG-2 knob grid.
#[must_use]
pub fn stage_pareto(stage: Stage) -> ParetoSet {
    let kernel = stage_kernel(stage);
    let candidates: Vec<MicroArch> = mpeg2_knob_grid()
        .into_iter()
        .map(|knobs| synthesize(&kernel, knobs))
        .collect();
    ParetoSet::from_candidates(candidates)
}

/// Pareto set of the testbench processes (a single trivial point).
fn testbench_pareto() -> ParetoSet {
    ParetoSet::from_candidates(vec![MicroArch {
        knobs: HlsKnobs::baseline(),
        latency: 1,
        area: 0.00444,
    }])
}

/// Builds the full case study: topology plus Pareto sets, as an
/// unoptimized [`Design`] (every stage on its mid-frontier point).
///
/// # Panics
///
/// Never panics: the construction is static and internally consistent.
#[must_use]
pub fn mpeg2_design() -> (Design, Mpeg2Topology) {
    let topo = crate::topology::build_topology();
    let pareto: Vec<ParetoSet> = topo
        .system
        .process_ids()
        .map(|p| {
            if p == topo.tb_src || p == topo.tb_snk {
                testbench_pareto()
            } else {
                let stage = Stage::ALL[p.index() - 1];
                stage_pareto(stage)
            }
        })
        .collect();
    let design = Design::new(topo.system.clone(), pareto).expect("sizes match by construction");
    (design, topo)
}

/// The M1 anchor: the fastest implementation of every process
/// (paper: CT 1,906 KCycles, 2.267 mm²).
#[must_use]
pub fn m1_design() -> (Design, Mpeg2Topology) {
    let (mut design, topo) = mpeg2_design();
    design.select_fastest();
    (design, topo)
}

/// The M2 anchor: performance traded for area — every stage on the
/// frontier point closest to twice its fastest latency
/// (paper: CT 3,597 KCycles, 1.562 mm²).
#[must_use]
pub fn m2_design() -> (Design, Mpeg2Topology) {
    let (mut design, topo) = mpeg2_design();
    for p in topo.system.process_ids() {
        let set = design.pareto(p);
        let target = set.fastest().latency * 2;
        let idx = set
            .points()
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.latency.abs_diff(target))
            .map(|(i, _)| i)
            .expect("frontier non-empty");
        design.select(p, idx).expect("index within frontier");
    }
    (design, topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stage_has_a_frontier() {
        for stage in Stage::ALL {
            let set = stage_pareto(stage);
            assert!(set.len() >= 2, "{} has a degenerate frontier", stage.name());
        }
    }

    #[test]
    fn m1_is_faster_and_larger_than_m2() {
        let (m1, _) = m1_design();
        let (m2, _) = m2_design();
        let ct1 = ermes::analyze_design(&m1).cycle_time().expect("live");
        let ct2 = ermes::analyze_design(&m2).cycle_time().expect("live");
        assert!(ct1 < ct2, "M1 must be faster: {ct1} vs {ct2}");
        assert!(m1.area() > m2.area(), "M1 must be larger");
    }

    #[test]
    fn design_sizes_match_table1() {
        let (design, topo) = mpeg2_design();
        assert_eq!(design.system().process_count(), 28);
        assert_eq!(topo.encoder_channels.len(), 60);
    }
}
