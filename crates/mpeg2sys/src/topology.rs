//! The MPEG-2 encoder system topology (Table 1 of the paper).
//!
//! A faithful synthetic reconstruction of the case study: 26 processes
//! interconnected through 60 blocking channels (plus the two testbench
//! processes), with the structures the paper calls out as deadlock-prone —
//! reconvergent paths (macroblocks reach the residual stage both directly
//! and through motion compensation) and feedback loops (the reconstructed
//! reference frame, the rate-control bit budget, and the GOP-control
//! statistics), the latter pre-loaded with one initial item each.
//!
//! Channel latencies are characterized from payload sizes exactly as the
//! paper describes (quantity of data to be transferred over the channel's
//! physical width), spanning 1–5,280 cycles: the largest corresponds to a
//! full 352×240 luma frame over a 128-bit channel.

use hlsim::channel_latency;
use sysgraph::{ChannelId, ProcessId, SystemGraph};

/// Frame geometry of the paper's input stream (Table 1: 352×240 pixels).
pub const FRAME_WIDTH: u64 = 352;
/// Frame height in pixels.
pub const FRAME_HEIGHT: u64 = 240;
/// Macroblocks per frame (22 × 15).
pub const MACROBLOCKS: u64 = (FRAME_WIDTH / 16) * (FRAME_HEIGHT / 16);

/// Indices of the 26 encoder processes (testbench excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the variants are the block diagram; names say it all
pub enum Stage {
    InputCtrl,
    GopCtrl,
    MbSplit,
    CurStore,
    RefStore,
    MeCoarse,
    MeFine,
    ModeDecision,
    McPredict,
    Residual,
    DctLuma,
    DctChroma,
    ActStats,
    RateCtrl,
    QuantLuma,
    QuantChroma,
    ZigzagLuma,
    ZigzagChroma,
    RleLuma,
    RleChroma,
    VlcMb,
    VlcHeader,
    Iquant,
    Idct,
    Recon,
    ReconStore,
}

impl Stage {
    /// All 26 stages in declaration order.
    pub const ALL: [Stage; 26] = [
        Stage::InputCtrl,
        Stage::GopCtrl,
        Stage::MbSplit,
        Stage::CurStore,
        Stage::RefStore,
        Stage::MeCoarse,
        Stage::MeFine,
        Stage::ModeDecision,
        Stage::McPredict,
        Stage::Residual,
        Stage::DctLuma,
        Stage::DctChroma,
        Stage::ActStats,
        Stage::RateCtrl,
        Stage::QuantLuma,
        Stage::QuantChroma,
        Stage::ZigzagLuma,
        Stage::ZigzagChroma,
        Stage::RleLuma,
        Stage::RleChroma,
        Stage::VlcMb,
        Stage::VlcHeader,
        Stage::Iquant,
        Stage::Idct,
        Stage::Recon,
        Stage::ReconStore,
    ];

    /// Snake-case display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::InputCtrl => "input_ctrl",
            Stage::GopCtrl => "gop_ctrl",
            Stage::MbSplit => "mb_split",
            Stage::CurStore => "cur_store",
            Stage::RefStore => "ref_store",
            Stage::MeCoarse => "me_coarse",
            Stage::MeFine => "me_fine",
            Stage::ModeDecision => "mode_decision",
            Stage::McPredict => "mc_predict",
            Stage::Residual => "residual",
            Stage::DctLuma => "dct_luma",
            Stage::DctChroma => "dct_chroma",
            Stage::ActStats => "act_stats",
            Stage::RateCtrl => "rate_ctrl",
            Stage::QuantLuma => "quant_luma",
            Stage::QuantChroma => "quant_chroma",
            Stage::ZigzagLuma => "zigzag_luma",
            Stage::ZigzagChroma => "zigzag_chroma",
            Stage::RleLuma => "rle_luma",
            Stage::RleChroma => "rle_chroma",
            Stage::VlcMb => "vlc_mb",
            Stage::VlcHeader => "vlc_header",
            Stage::Iquant => "iquant",
            Stage::Idct => "idct",
            Stage::Recon => "recon",
            Stage::ReconStore => "recon_store",
        }
    }
}

/// The constructed topology with handles.
#[derive(Debug, Clone)]
pub struct Mpeg2Topology {
    /// The system graph (latencies hold placeholder values until a
    /// [`Design`](ermes::Design) selection is applied).
    pub system: SystemGraph,
    /// Testbench stimulus process.
    pub tb_src: ProcessId,
    /// Testbench monitor process.
    pub tb_snk: ProcessId,
    /// Encoder processes indexed by [`Stage`] declaration order.
    pub stages: Vec<ProcessId>,
    /// Channels between encoder processes (the 60 of Table 1).
    pub encoder_channels: Vec<ChannelId>,
    /// The two testbench channels (not counted in Table 1).
    pub testbench_channels: [ChannelId; 2],
}

impl Mpeg2Topology {
    /// Handle of a stage's process.
    #[must_use]
    pub fn stage(&self, s: Stage) -> ProcessId {
        self.stages[Stage::ALL
            .iter()
            .position(|&x| x == s)
            .expect("stage exists")]
    }
}

/// Burst transfer latency for DMA-style frame moves (no per-beat
/// handshake — the stores stream whole frames).
fn burst(bits: u64, width: u64) -> u64 {
    bits.div_ceil(width)
}

/// Builds the 26-process / 60-channel encoder with its testbench.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build_topology() -> Mpeg2Topology {
    let mut sys = SystemGraph::new();
    let tb_src = sys.add_process("tb_src", 1);
    let stages: Vec<ProcessId> = Stage::ALL
        .iter()
        .map(|s| sys.add_process(s.name(), 1))
        .collect();
    let tb_snk = sys.add_process("tb_snk", 1);
    let id = |s: Stage| stages[Stage::ALL.iter().position(|&x| x == s).expect("stage")];

    // Payload sizes in bits.
    let luma_frame = FRAME_WIDTH * FRAME_HEIGHT * 8;
    let mb = 384 * 8; // 4:2:0 macroblock: 256 luma + 128 chroma bytes
    let mb_luma_coeffs = 4 * 64 * 12;
    let mb_chroma_coeffs = 2 * 64 * 12;
    let search_window = 48 * 48 * 8;
    let mv = 32;
    let ctrl = 16;
    let rle_luma_payload = 4 * 64 * 4; // typical compressed run-level data
    let rle_chroma_payload = 2 * 64 * 4;
    let bitstream_chunk = 1_024;

    // Channel latencies: frames stream over 128-bit bursts, macroblock
    // data over 32-bit handshaken channels, and single-beat motion
    // vectors over register-mapped wires (1 cycle: the paper's minimum).
    let frame_lat = burst(luma_frame, 128); // = 5,280: the paper's maximum
    let lat = |bits: u64| channel_latency(bits, 32);
    let mv_lat = burst(mv, 32); // = 1

    use Stage::*;
    let spec: Vec<(Stage, Stage, u64, u64)> = vec![
        // (from, to, latency, initial tokens)
        (InputCtrl, CurStore, frame_lat, 0),
        (InputCtrl, GopCtrl, lat(ctrl), 0),
        (InputCtrl, RateCtrl, lat(ctrl), 0),
        (GopCtrl, MbSplit, lat(ctrl), 0),
        (GopCtrl, RateCtrl, lat(ctrl), 0),
        (GopCtrl, VlcHeader, lat(ctrl), 0),
        (GopCtrl, RefStore, lat(ctrl), 0),
        (GopCtrl, ReconStore, lat(ctrl), 0),
        (CurStore, MbSplit, frame_lat, 0),
        (CurStore, MeCoarse, lat(mb), 0),
        (CurStore, MeFine, lat(mb), 0),
        (MbSplit, MeCoarse, lat(mb), 0),
        (MbSplit, Residual, lat(mb), 0), // reconvergent with MC path
        (MbSplit, ActStats, lat(mb), 0),
        (MbSplit, ModeDecision, lat(mb), 0), // intra candidate
        (RefStore, MeCoarse, lat(search_window), 0),
        (RefStore, MeFine, lat(search_window), 0),
        (RefStore, McPredict, lat(search_window), 0),
        (MeCoarse, MeFine, mv_lat, 0),
        (MeFine, ModeDecision, mv_lat, 0),
        (MeFine, McPredict, mv_lat, 0),
        (ActStats, RateCtrl, lat(ctrl), 0),
        (ActStats, ModeDecision, lat(ctrl), 0),
        (ActStats, GopCtrl, lat(ctrl), 1), // feedback: scene statistics
        (ModeDecision, McPredict, mv_lat, 0),
        (ModeDecision, VlcMb, mv_lat, 0),
        (ModeDecision, RateCtrl, lat(ctrl), 0),
        (McPredict, Residual, lat(mb), 0),
        (McPredict, Recon, lat(mb), 0), // reconvergent with IDCT path
        (Residual, DctLuma, lat(4 * 64 * 9), 0),
        (Residual, DctChroma, lat(2 * 64 * 9), 0),
        (DctLuma, QuantLuma, lat(mb_luma_coeffs), 0),
        (DctLuma, ActStats, lat(ctrl), 1), // feedback: DC activity lags one MB
        (DctChroma, QuantChroma, lat(mb_chroma_coeffs), 0),
        (RateCtrl, QuantLuma, lat(ctrl), 0),
        (RateCtrl, QuantChroma, lat(ctrl), 0),
        (RateCtrl, VlcHeader, lat(ctrl), 0),
        (QuantLuma, ZigzagLuma, lat(mb_luma_coeffs), 0),
        (QuantLuma, Iquant, lat(mb_luma_coeffs), 0),
        (QuantChroma, ZigzagChroma, lat(mb_chroma_coeffs), 0),
        (QuantChroma, Iquant, lat(mb_chroma_coeffs), 0),
        (ZigzagLuma, RleLuma, lat(mb_luma_coeffs), 0),
        (ZigzagChroma, RleChroma, lat(mb_chroma_coeffs), 0),
        (RleLuma, VlcMb, lat(rle_luma_payload), 0),
        (RleChroma, VlcMb, lat(rle_chroma_payload), 0),
        (VlcHeader, VlcMb, lat(bitstream_chunk), 0),
        (VlcMb, RateCtrl, lat(ctrl), 1), // feedback: bits spent
        (Iquant, Idct, lat(mb_luma_coeffs + mb_chroma_coeffs), 0),
        (Idct, Recon, lat(mb), 0),
        (Recon, ReconStore, lat(mb), 0),
        (Recon, RateCtrl, lat(ctrl), 1), // feedback: distortion estimate
        (ReconStore, RefStore, frame_lat, 1), // feedback: reference frame
        // Auxiliary control/data plumbing rounding out the 60 channels.
        (InputCtrl, ActStats, lat(ctrl), 0),
        (GopCtrl, ModeDecision, lat(ctrl), 0),
        (GopCtrl, Iquant, lat(ctrl), 0),
        (GopCtrl, Idct, lat(ctrl), 0),
        (MbSplit, DctLuma, lat(ctrl), 0), // block position metadata
        (MbSplit, DctChroma, lat(ctrl), 0),
        (VlcHeader, RateCtrl, lat(ctrl), 1), // feedback: header bits spent
        (RateCtrl, VlcMb, lat(ctrl), 0),     // qscale used for coding
    ];

    let mut encoder_channels = Vec::with_capacity(spec.len());
    for (i, &(from, to, latency, tokens)) in spec.iter().enumerate() {
        let name = format!("ch{:02}_{}_{}", i, from.name(), to.name());
        let c = sys
            .add_channel_with_tokens(name, id(from), id(to), latency, tokens)
            .expect("static topology is valid");
        encoder_channels.push(c);
    }

    let tb_in = sys
        .add_channel("tb_in", tb_src, id(InputCtrl), frame_lat)
        .expect("valid");
    let tb_out = sys
        .add_channel("tb_out", id(VlcMb), tb_snk, lat(bitstream_chunk))
        .expect("valid");

    Mpeg2Topology {
        system: sys,
        tb_src,
        tb_snk,
        stages,
        encoder_channels,
        testbench_channels: [tb_in, tb_out],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_match_the_paper() {
        let topo = build_topology();
        assert_eq!(Stage::ALL.len(), 26);
        assert_eq!(topo.encoder_channels.len(), 60, "Table 1: 60 channels");
        assert_eq!(topo.system.process_count(), 28, "26 + testbench");
    }

    #[test]
    fn channel_latencies_span_the_paper_range() {
        let topo = build_topology();
        let lats: Vec<u64> = topo
            .encoder_channels
            .iter()
            .map(|&c| topo.system.channel(c).latency())
            .collect();
        assert_eq!(*lats.iter().min().expect("non-empty"), 1);
        assert_eq!(*lats.iter().max().expect("non-empty"), 5_280);
    }

    #[test]
    fn feedback_loops_are_initialized() {
        let topo = build_topology();
        let initialized = topo
            .encoder_channels
            .iter()
            .filter(|&&c| topo.system.channel(c).initial_tokens() > 0)
            .count();
        assert_eq!(initialized, 6, "six feedback channels");
    }

    #[test]
    fn reconvergent_paths_exist() {
        let topo = build_topology();
        // Residual joins mb_split directly and through mc_predict.
        let residual = topo.stage(Stage::Residual);
        assert!(topo.system.get_order(residual).len() >= 2);
        // Recon joins mc_predict and idct.
        let recon = topo.stage(Stage::Recon);
        assert!(topo.system.get_order(recon).len() >= 2);
    }

    #[test]
    fn topology_is_live_under_some_ordering() {
        let topo = build_topology();
        let solution = chanorder::order_channels(&topo.system);
        let verdict = chanorder::cycle_time_of(&topo.system, &solution.ordering).expect("valid");
        assert!(!verdict.is_deadlock(), "encoder must be orderable");
    }

    #[test]
    fn ordering_space_is_astronomical() {
        // Section 6: "there are simply too many possible ordering
        // combinations to consider" — the space dwarfs the motivating
        // example's 36.
        let topo = build_topology();
        assert!(topo.system.ordering_space() > 1u128 << 60);
    }
}
