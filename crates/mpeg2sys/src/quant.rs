//! Coefficient quantization.
//!
//! A simplified MPEG-2-style quantizer: a perceptual weighting matrix
//! scaled by a `qscale` factor (the knob the rate controller turns),
//! applied with symmetric rounding so `dequantize(quantize(x))`
//! approximates `x` within half a step.

use crate::frame::{Block, BLOCK};

/// The default intra weighting matrix (MPEG-2's Table, abbreviated to its
/// structure: lighter quantization near DC, heavier at high frequencies).
pub const INTRA_MATRIX: [u16; BLOCK * BLOCK] = [
    8, 16, 19, 22, 26, 27, 29, 34, 16, 16, 22, 24, 27, 29, 34, 37, 19, 22, 26, 27, 29, 34, 34, 38,
    22, 22, 26, 27, 29, 34, 37, 40, 22, 26, 27, 29, 32, 35, 40, 48, 26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69, 27, 29, 35, 38, 46, 56, 69, 83,
];

/// Effective quantizer step for coefficient position `i` under `qscale`.
fn step(i: usize, qscale: u16) -> i32 {
    (i32::from(INTRA_MATRIX[i]) * i32::from(qscale)).max(1) / 16
}

/// Quantizes a coefficient block with the given `qscale` (1..=31 in
/// MPEG-2; larger values quantize more coarsely).
///
/// # Panics
///
/// Panics if `qscale == 0`.
///
/// # Examples
///
/// ```
/// use mpeg2sys::{quantize, dequantize};
/// let mut coeffs = [0i16; 64];
/// coeffs[0] = 800;
/// coeffs[1] = -33;
/// let q = quantize(&coeffs, 4);
/// let back = dequantize(&q, 4);
/// // Reconstruction lands within one quantizer step.
/// assert!((back[0] - 800).abs() <= 2);
/// assert!((back[1] + 33).abs() <= 4);
/// ```
#[must_use]
pub fn quantize(coeffs: &Block, qscale: u16) -> Block {
    assert!(qscale > 0, "qscale must be positive");
    let mut out = [0i16; BLOCK * BLOCK];
    for (i, (&c, o)) in coeffs.iter().zip(out.iter_mut()).enumerate() {
        let s = step(i, qscale).max(1);
        let c = i32::from(c);
        let q = if c >= 0 {
            (c + s / 2) / s
        } else {
            (c - s / 2) / s
        };
        *o = q.clamp(-2047, 2047) as i16;
    }
    out
}

/// Reconstructs coefficients from quantized levels.
///
/// # Panics
///
/// Panics if `qscale == 0`.
#[must_use]
pub fn dequantize(levels: &Block, qscale: u16) -> Block {
    assert!(qscale > 0, "qscale must be positive");
    let mut out = [0i16; BLOCK * BLOCK];
    for (i, (&q, o)) in levels.iter().zip(out.iter_mut()).enumerate() {
        let s = step(i, qscale).max(1);
        *o = (i32::from(q) * s).clamp(-32_768, 32_767) as i16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Block {
        let mut b = [0i16; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as i16) - 32) * 7;
        }
        b
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let b = sample();
        for qscale in [1u16, 2, 4, 8, 16, 31] {
            let back = dequantize(&quantize(&b, qscale), qscale);
            for (i, (&orig, &rec)) in b.iter().zip(&back).enumerate() {
                let s = (i32::from(INTRA_MATRIX[i]) * i32::from(qscale) / 16).max(1);
                assert!(
                    (i32::from(orig) - i32::from(rec)).abs() <= (s + 1) / 2 + 1,
                    "q{qscale} coeff {i}: {orig} vs {rec} (step {s})"
                );
            }
        }
    }

    #[test]
    fn coarser_qscale_zeroes_more_coefficients() {
        let b = sample();
        let fine = quantize(&b, 2);
        let coarse = quantize(&b, 31);
        let z = |q: &Block| q.iter().filter(|&&v| v == 0).count();
        assert!(z(&coarse) > z(&fine));
    }

    #[test]
    fn zero_block_stays_zero() {
        let zero = [0i16; 64];
        assert_eq!(quantize(&zero, 8), zero);
        assert_eq!(dequantize(&zero, 8), zero);
    }

    #[test]
    fn quantization_is_odd_symmetric() {
        let b = sample();
        let mut neg = b;
        for v in &mut neg {
            *v = -*v;
        }
        let qb = quantize(&b, 6);
        let qn = quantize(&neg, 6);
        for (a, b) in qb.iter().zip(&qn) {
            assert_eq!(*a, -*b);
        }
    }
}
