//! 8×8 forward and inverse discrete cosine transform.
//!
//! The orthonormal 2-D DCT-II used by MPEG-2's transform stage, computed
//! in double precision and rounded to integer coefficients. Encoder and
//! decoder share the same implementation, so the reconstruction loop is
//! drift-free by construction.

use crate::frame::{Block, BLOCK};

/// Precomputed cosine basis: `basis[u][x] = c(u)·cos((2x+1)uπ/16)`.
fn basis(u: usize, x: usize) -> f64 {
    let cu = if u == 0 {
        (1.0f64 / BLOCK as f64).sqrt()
    } else {
        (2.0f64 / BLOCK as f64).sqrt()
    };
    cu * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / (2.0 * BLOCK as f64)).cos()
}

/// Forward 8×8 DCT: spatial samples to frequency coefficients.
///
/// # Examples
///
/// ```
/// use mpeg2sys::{forward_dct, inverse_dct};
/// let block = [100i16; 64];
/// let coeffs = forward_dct(&block);
/// // A flat block concentrates all energy in the DC coefficient.
/// assert_eq!(coeffs[0], 800);
/// assert!(coeffs[1..].iter().all(|&c| c == 0));
/// let back = inverse_dct(&coeffs);
/// assert_eq!(back, block);
/// ```
#[must_use]
pub fn forward_dct(block: &Block) -> Block {
    let mut out = [0i16; BLOCK * BLOCK];
    for v in 0..BLOCK {
        for u in 0..BLOCK {
            let mut sum = 0.0f64;
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    sum += f64::from(block[y * BLOCK + x]) * basis(u, x) * basis(v, y);
                }
            }
            out[v * BLOCK + u] = sum.round() as i16;
        }
    }
    out
}

/// Inverse 8×8 DCT: frequency coefficients back to spatial samples.
#[must_use]
pub fn inverse_dct(coeffs: &Block) -> Block {
    let mut out = [0i16; BLOCK * BLOCK];
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut sum = 0.0f64;
            for v in 0..BLOCK {
                for u in 0..BLOCK {
                    sum += f64::from(coeffs[v * BLOCK + u]) * basis(u, x) * basis(v, y);
                }
            }
            out[y * BLOCK + x] = sum.round() as i16;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Block {
        let mut b = [0i16; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as i16 % 32) - 16;
        }
        b
    }

    #[test]
    fn roundtrip_error_is_at_most_one() {
        // Rounding to integer coefficients loses at most ±1 per sample.
        let b = ramp();
        let back = inverse_dct(&forward_dct(&b));
        for (a, r) in b.iter().zip(&back) {
            assert!((a - r).abs() <= 1, "sample drifted: {a} vs {r}");
        }
    }

    #[test]
    fn dc_is_eight_times_the_mean() {
        let b = [64i16; 64];
        let c = forward_dct(&b);
        assert_eq!(c[0], 512); // 8 * mean for the orthonormal DCT
    }

    #[test]
    fn transform_is_linear_up_to_rounding() {
        let a = ramp();
        let mut double = a;
        for v in &mut double {
            *v *= 2;
        }
        let ca = forward_dct(&a);
        let cd = forward_dct(&double);
        for (x, y) in ca.iter().zip(&cd) {
            assert!((2 * x - y).abs() <= 2, "nonlinear: {x} vs {y}");
        }
    }

    #[test]
    fn energy_is_preserved() {
        // Parseval: the orthonormal DCT preserves the sum of squares
        // (up to integer rounding).
        let b = ramp();
        let c = forward_dct(&b);
        let es: i64 = b.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        let ec: i64 = c.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        let tolerance = es / 20 + 64;
        assert!((es - ec).abs() <= tolerance, "energy {es} vs {ec}");
    }

    #[test]
    fn high_frequency_pattern_lands_in_high_coefficients() {
        let mut b = [0i16; 64];
        for y in 0..8 {
            for x in 0..8 {
                b[y * 8 + x] = if x % 2 == 0 { 50 } else { -50 };
            }
        }
        let c = forward_dct(&b);
        assert_eq!(c[0], 0, "no DC in an alternating pattern");
        // Energy concentrates in the highest horizontal frequency (u=7).
        let hf: i64 = (0..8).map(|v| i64::from(c[v * 8 + 7]).abs()).sum();
        let lf: i64 = (0..8).map(|v| i64::from(c[v * 8 + 1]).abs()).sum();
        assert!(hf > lf);
    }
}
