//! Full-search block motion estimation and compensation.
//!
//! The functional counterpart of the `me_coarse`/`me_fine`/`mc_predict`
//! stages: for every 8×8 block of the current frame, search a window of
//! the reference frame for the displacement minimizing the sum of
//! absolute differences, then build the motion-compensated prediction.

use crate::frame::{Block, Frame, BLOCK};

/// A motion vector in integer pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Horizontal displacement (reference x = block x + dx).
    pub dx: i8,
    /// Vertical displacement.
    pub dy: i8,
}

/// The per-block motion field of a frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MotionField {
    /// Vectors in block raster order.
    pub vectors: Vec<MotionVector>,
}

/// Sum of absolute differences between the block at `(bx*8, by*8)` in
/// `cur` and the displaced block in `reference`; `None` when the
/// displaced block leaves the frame.
fn sad(cur: &Frame, reference: &Frame, bx: usize, by: usize, mv: MotionVector) -> Option<u32> {
    let x0 = bx as isize * BLOCK as isize + isize::from(mv.dx);
    let y0 = by as isize * BLOCK as isize + isize::from(mv.dy);
    if x0 < 0
        || y0 < 0
        || x0 + BLOCK as isize > reference.width() as isize
        || y0 + BLOCK as isize > reference.height() as isize
    {
        return None;
    }
    let mut total = 0u32;
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let a = i32::from(cur.get(bx * BLOCK + x, by * BLOCK + y));
            let b = i32::from(reference.get((x0 as usize) + x, (y0 as usize) + y));
            total += a.abs_diff(b);
        }
    }
    Some(total)
}

/// Full-search motion estimation over a `±range` window.
///
/// Ties favor the smaller displacement (zero vector first), so static
/// regions get zero vectors.
///
/// # Examples
///
/// ```
/// use mpeg2sys::{estimate_motion, Frame};
/// let reference = Frame::synthetic(64, 48, 0, 0);
/// let current = Frame::synthetic(64, 48, 2, 1);
/// let field = estimate_motion(&current, &reference, 4);
/// // Blocks covering the moving square point back at the reference.
/// assert!(field.vectors.iter().any(|v| v.dx == -2 && v.dy == -1));
/// ```
#[must_use]
pub fn estimate_motion(cur: &Frame, reference: &Frame, range: i8) -> MotionField {
    assert_eq!(cur.width(), reference.width());
    assert_eq!(cur.height(), reference.height());
    let mut vectors = Vec::with_capacity(cur.blocks_x() * cur.blocks_y());
    for by in 0..cur.blocks_y() {
        for bx in 0..cur.blocks_x() {
            let mut best = MotionVector::default();
            let mut best_sad =
                sad(cur, reference, bx, by, best).expect("zero vector is always in range");
            for dy in -range..=range {
                for dx in -range..=range {
                    let mv = MotionVector { dx, dy };
                    if let Some(s) = sad(cur, reference, bx, by, mv) {
                        let closer = (i32::from(dx).abs() + i32::from(dy).abs())
                            < (i32::from(best.dx).abs() + i32::from(best.dy).abs());
                        if s < best_sad || (s == best_sad && closer) {
                            best_sad = s;
                            best = mv;
                        }
                    }
                }
            }
            vectors.push(best);
        }
    }
    MotionField { vectors }
}

/// Builds the motion-compensated prediction of a frame from `reference`
/// and a motion field.
///
/// # Panics
///
/// Panics if the field does not cover every block or a vector points
/// outside the reference.
#[must_use]
pub fn compensate(reference: &Frame, field: &MotionField) -> Frame {
    let mut out = Frame::gray(reference.width(), reference.height());
    let bx_count = reference.blocks_x();
    assert_eq!(
        field.vectors.len(),
        bx_count * reference.blocks_y(),
        "motion field must cover the frame"
    );
    for (i, mv) in field.vectors.iter().enumerate() {
        let bx = i % bx_count;
        let by = i / bx_count;
        let x0 = bx * BLOCK;
        let y0 = by * BLOCK;
        let mut block: Block = [0; BLOCK * BLOCK];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                let rx = (x0 + x) as isize + isize::from(mv.dx);
                let ry = (y0 + y) as isize + isize::from(mv.dy);
                assert!(
                    rx >= 0
                        && ry >= 0
                        && (rx as usize) < reference.width()
                        && (ry as usize) < reference.height(),
                    "vector escapes the reference frame"
                );
                block[y * BLOCK + x] = i16::from(reference.get(rx as usize, ry as usize));
            }
        }
        out.set_block(bx, by, &block);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_scene_gets_zero_vectors() {
        let f = Frame::synthetic(32, 32, 0, 0);
        let field = estimate_motion(&f, &f, 3);
        assert!(field.vectors.iter().all(|v| *v == MotionVector::default()));
    }

    #[test]
    fn compensation_of_zero_field_is_identity() {
        let f = Frame::synthetic(32, 32, 1, 1);
        let field = MotionField {
            vectors: vec![MotionVector::default(); f.blocks_x() * f.blocks_y()],
        };
        assert_eq!(compensate(&f, &field), f);
    }

    #[test]
    fn estimation_reduces_prediction_error() {
        let reference = Frame::synthetic(64, 48, 0, 0);
        let current = Frame::synthetic(64, 48, 3, 2);
        let field = estimate_motion(&current, &reference, 4);
        let predicted = compensate(&reference, &field);
        let zero_field = MotionField {
            vectors: vec![MotionVector::default(); field.vectors.len()],
        };
        let unpredicted = compensate(&reference, &zero_field);
        assert!(
            current.mse(&predicted) < current.mse(&unpredicted),
            "motion compensation must beat the zero prediction"
        );
    }

    #[test]
    fn vectors_respect_the_search_range() {
        let reference = Frame::synthetic(64, 48, 0, 0);
        let current = Frame::synthetic(64, 48, 6, 0);
        let field = estimate_motion(&current, &reference, 2);
        for v in &field.vectors {
            assert!(v.dx.abs() <= 2 && v.dy.abs() <= 2);
        }
    }
}
