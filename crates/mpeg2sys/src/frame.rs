//! Frame and block types for the functional encoder.
//!
//! The functional pipeline runs on luma-only frames at a reduced
//! resolution (the timing model uses the full 352×240 geometry); blocks
//! are the 8×8 units all transforms operate on.

/// Width of the functional pipeline's frames.
pub const FUNC_WIDTH: usize = 64;
/// Height of the functional pipeline's frames.
pub const FUNC_HEIGHT: usize = 48;
/// Block edge length.
pub const BLOCK: usize = 8;

/// An 8×8 block of signed samples (pixels, residuals, or coefficients).
pub type Block = [i16; BLOCK * BLOCK];

/// A luma frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Frame {
    /// Creates a frame filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are positive multiples of 8.
    #[must_use]
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(width > 0 && height > 0, "frame must be non-empty");
        assert!(
            width.is_multiple_of(BLOCK) && height.is_multiple_of(BLOCK),
            "dimensions must be multiples of 8"
        );
        Frame {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// A mid-gray frame (the reset value of reference-frame feedback).
    #[must_use]
    pub fn gray(width: usize, height: usize) -> Self {
        Frame::filled(width, height, 128)
    }

    /// A synthetic test frame: a bright square on a gradient background,
    /// displaced by `(dx, dy)` — consecutive frames with growing offsets
    /// emulate motion.
    #[must_use]
    pub fn synthetic(width: usize, height: usize, dx: usize, dy: usize) -> Self {
        let mut f = Frame::filled(width, height, 0);
        for y in 0..height {
            for x in 0..width {
                let mut v = ((x * 2 + y) % 256) as u8 / 2 + 40;
                let sx = (x + width).wrapping_sub(dx) % width;
                let sy = (y + height).wrapping_sub(dy) % height;
                if (8..24).contains(&sx) && (8..24).contains(&sy) {
                    v = 220;
                }
                f.pixels[y * width + x] = v;
            }
        }
        f
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        self.pixels[y * self.width + x] = value;
    }

    /// Number of 8×8 blocks per row.
    #[must_use]
    pub fn blocks_x(&self) -> usize {
        self.width / BLOCK
    }

    /// Number of 8×8 block rows.
    #[must_use]
    pub fn blocks_y(&self) -> usize {
        self.height / BLOCK
    }

    /// Extracts the 8×8 block whose top-left corner is `(bx*8, by*8)`.
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    #[must_use]
    pub fn block(&self, bx: usize, by: usize) -> Block {
        let mut out = [0i16; BLOCK * BLOCK];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                out[y * BLOCK + x] = i16::from(self.get(bx * BLOCK + x, by * BLOCK + y));
            }
        }
        out
    }

    /// Writes an 8×8 block (clamped to `0..=255`) at `(bx*8, by*8)`.
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    pub fn set_block(&mut self, bx: usize, by: usize, block: &Block) {
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                let v = block[y * BLOCK + x].clamp(0, 255) as u8;
                self.set(bx * BLOCK + x, by * BLOCK + y, v);
            }
        }
    }

    /// Mean squared error against another frame of the same geometry.
    ///
    /// # Panics
    ///
    /// Panics if geometries differ.
    #[must_use]
    pub fn mse(&self, other: &Frame) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let sum: f64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(&a, &b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum();
        sum / self.pixels.len() as f64
    }

    /// Peak signal-to-noise ratio against a reference, in dB.
    #[must_use]
    pub fn psnr(&self, reference: &Frame) -> f64 {
        let mse = self.mse(reference);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let f = Frame::synthetic(32, 16, 0, 0);
        let b = f.block(1, 1);
        let mut g = Frame::gray(32, 16);
        g.set_block(1, 1, &b);
        assert_eq!(g.block(1, 1), b);
    }

    #[test]
    fn synthetic_frames_move() {
        let a = Frame::synthetic(64, 48, 0, 0);
        let b = Frame::synthetic(64, 48, 4, 2);
        assert_ne!(a, b);
        // The square moved by (4, 2): sampling confirms displacement.
        assert_eq!(a.get(10, 10), b.get(14, 12));
    }

    #[test]
    fn psnr_of_identical_frames_is_infinite() {
        let f = Frame::synthetic(16, 16, 0, 0);
        assert!(f.psnr(&f).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let f = Frame::synthetic(16, 16, 0, 0);
        let mut noisy = f.clone();
        noisy.set(3, 3, f.get(3, 3).wrapping_add(40));
        let mut noisier = noisy.clone();
        noisier.set(5, 5, f.get(5, 5).wrapping_add(80));
        assert!(f.psnr(&noisy) > f.psnr(&noisier));
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn odd_dimensions_rejected() {
        let _ = Frame::filled(15, 16, 0);
    }
}
