//! The decoder as a blocking process network.
//!
//! The mirror image of the encoder pipeline: seven processes turn the
//! entropy-coded stream back into frames, with the reference-frame
//! feedback loop on the decoding side this time. Output must equal the
//! straight-line decoder ([`decode_sequence`](crate::codec::decode_sequence))
//! frame-for-frame — which, by the codec's drift-free construction, also
//! equals the encoder-side reconstructions.

use crate::bitstream::BitReader;
use crate::dct::inverse_dct;
use crate::frame::{Block, Frame, BLOCK, FUNC_HEIGHT, FUNC_WIDTH};
use crate::motion::{compensate, MotionField, MotionVector};
use crate::pipeline::Packet;
use crate::quant::dequantize;
use crate::vlc::decode_block;
use pnsim::{run, FnKernel, Kernel, KernelOutput, SequenceSource, SimConfig};
use sysgraph::SystemGraph;

/// Result of a decoder-network run.
#[derive(Debug, Clone)]
pub struct DecoderOutcome {
    /// Decoded frames, in stream order.
    pub frames: Vec<Frame>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// True if the network stalled (must never happen on valid streams).
    pub deadlocked: bool,
}

/// Decodes `chunks` (one entropy-coded frame each) through the
/// seven-process network.
///
/// # Panics
///
/// Panics on malformed streams (the network kernels are not fallible;
/// validate with [`decode_sequence`](crate::codec::decode_sequence) when
/// the stream is untrusted) and on wiring inconsistencies.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_decoder_pipeline(chunks: Vec<Vec<u8>>) -> DecoderOutcome {
    let n_frames = chunks.len() as u64;
    let mut sys = SystemGraph::new();
    let src = sys.add_process("tb_src", 1);
    let parser = sys.add_process("parser", 3);
    let mc = sys.add_process("mc", 4);
    let inv = sys.add_process("inv", 4);
    let recon = sys.add_process("recon", 2);
    let store = sys.add_process("ref_store", 1);
    let snk = sys.add_process("tb_snk", 1);

    sys.add_channel("bits", src, parser, 2).expect("valid");
    sys.add_channel("motion", parser, mc, 1).expect("valid");
    sys.add_channel("coeffs", parser, inv, 2).expect("valid");
    sys.add_channel_with_tokens("ref", store, mc, 2, 1)
        .expect("valid"); // decoder-side reference feedback
    sys.add_channel("predicted", mc, recon, 2).expect("valid");
    sys.add_channel("residual", inv, recon, 2).expect("valid");
    sys.add_channel("out", recon, snk, 2).expect("valid");
    sys.add_channel("loop", recon, store, 2).expect("valid");

    let solution = chanorder::order_channels(&sys);
    solution
        .ordering
        .apply_to(&mut sys)
        .expect("algorithm orderings are valid");

    let parser_puts: Vec<String> = sys
        .put_order(parser)
        .iter()
        .map(|&c| sys.channel(c).name().to_string())
        .collect();
    let recon_puts: Vec<String> = sys
        .put_order(recon)
        .iter()
        .map(|&c| sys.channel(c).name().to_string())
        .collect();

    let kernels: Vec<Box<dyn Kernel<Packet>>> = vec![
        // tb_src
        Box::new(SequenceSource::new(
            chunks.into_iter().map(Packet::Bits),
            1,
            1,
        )),
        // parser: bits -> motion field + tagged coefficients.
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let Packet::Bits(bytes) = &inputs[0] else {
                panic!("parser expected bits, got {:?}", inputs[0]);
            };
            let mut r = BitReader::new(bytes);
            let bw = r.get_ue().expect("header width") as usize;
            let bh = r.get_ue().expect("header height") as usize;
            assert_eq!((bw * 8, bh * 8), (FUNC_WIDTH, FUNC_HEIGHT), "geometry");
            let qscale = u16::try_from(r.get_ue().expect("qscale")).expect("range");
            let mut vectors = Vec::with_capacity(bw * bh);
            for _ in 0..bw * bh {
                let dx = i8::try_from(r.get_se().expect("dx")).expect("range");
                let dy = i8::try_from(r.get_se().expect("dy")).expect("range");
                vectors.push(MotionVector { dx, dy });
            }
            let blocks: Vec<Block> = (0..bw * bh)
                .map(|_| decode_block(&mut r).expect("block"))
                .collect();
            let outputs = parser_puts
                .iter()
                .map(|name| match name.as_str() {
                    "motion" => Packet::Motion(MotionField {
                        vectors: vectors.clone(),
                    }),
                    "coeffs" => Packet::Quantized {
                        qscale,
                        blocks: blocks.clone(),
                    },
                    other => panic!("unexpected parser output {other}"),
                })
                .collect();
            KernelOutput {
                outputs,
                latency: 3,
            }
        })),
        // mc: motion + reference -> prediction.
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let (motion, reference) = match (&inputs[0], &inputs[1]) {
                (Packet::Motion(m), Packet::Frame(f)) => (m.clone(), f.clone()),
                (Packet::Frame(f), Packet::Motion(m)) => (m.clone(), f.clone()),
                other => panic!("mc got unexpected packets: {other:?}"),
            };
            KernelOutput {
                outputs: vec![Packet::Frame(compensate(&reference, &motion))],
                latency: 4,
            }
        })),
        // inv: dequantize + inverse DCT.
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let Packet::Quantized { qscale, blocks } = &inputs[0] else {
                panic!("inv expected coefficients, got {:?}", inputs[0]);
            };
            let rec: Vec<Block> = blocks
                .iter()
                .map(|b| inverse_dct(&dequantize(b, *qscale)))
                .collect();
            KernelOutput {
                outputs: vec![Packet::Blocks(rec)],
                latency: 4,
            }
        })),
        // recon: prediction + residual -> frame (to sink and to the loop).
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let (mut predicted, residual) = match (&inputs[0], &inputs[1]) {
                (Packet::Frame(f), Packet::Blocks(b)) => (f.clone(), b.clone()),
                (Packet::Blocks(b), Packet::Frame(f)) => (f.clone(), b.clone()),
                other => panic!("recon got unexpected packets: {other:?}"),
            };
            let bx_count = predicted.blocks_x();
            for (i, blk) in residual.iter().enumerate() {
                let bx = i % bx_count;
                let by = i / bx_count;
                let p = predicted.block(bx, by);
                let mut sum = [0i16; BLOCK * BLOCK];
                for (o, (a, b)) in sum.iter_mut().zip(p.iter().zip(blk.iter())) {
                    *o = a + b;
                }
                predicted.set_block(bx, by, &sum);
            }
            let outputs = recon_puts
                .iter()
                .map(|name| match name.as_str() {
                    "out" | "loop" => Packet::Frame(predicted.clone()),
                    other => panic!("unexpected recon output {other}"),
                })
                .collect();
            KernelOutput {
                outputs,
                latency: 2,
            }
        })),
        // store.
        Box::new(FnKernel::new(|inputs: &[Packet]| KernelOutput {
            outputs: vec![inputs[0].clone()],
            latency: 1,
        })),
        // tb_snk.
        Box::new(FnKernel::new(|_inputs: &[Packet]| KernelOutput {
            outputs: Vec::new(),
            latency: 1,
        })),
    ];

    let (outcome, _) = run(
        &sys,
        kernels,
        SimConfig {
            max_iterations: Some(n_frames),
            record_sink_inputs: true,
            ..SimConfig::default()
        },
    );
    let frames = outcome
        .sink_inputs
        .first()
        .map(|(_, packets)| {
            packets
                .iter()
                .map(|p| match p {
                    Packet::Frame(f) => f.clone(),
                    other => panic!("sink received non-frame packet: {other:?}"),
                })
                .collect()
        })
        .unwrap_or_default();
    DecoderOutcome {
        frames,
        cycles: outcome.time,
        deadlocked: outcome.deadlocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_sequence, encode_sequence, CodecConfig};

    fn chunks(n: usize) -> (Vec<Frame>, Vec<Vec<u8>>) {
        let frames: Vec<Frame> = (0..n)
            .map(|i| Frame::synthetic(FUNC_WIDTH, FUNC_HEIGHT, i * 2, i))
            .collect();
        let encoded = encode_sequence(&frames, CodecConfig::default());
        let chunks = encoded.iter().map(|e| e.bytes.clone()).collect();
        (frames, chunks)
    }

    #[test]
    fn decoder_network_matches_straight_line_decoder() {
        let (_, chunks) = chunks(4);
        let golden = decode_sequence(&chunks, FUNC_WIDTH, FUNC_HEIGHT).expect("valid stream");
        let outcome = run_decoder_pipeline(chunks);
        assert!(!outcome.deadlocked, "decoder network must not stall");
        assert_eq!(outcome.frames.len(), golden.len());
        for (i, (a, b)) in outcome.frames.iter().zip(&golden).enumerate() {
            assert_eq!(a, b, "frame {i} differs");
        }
    }

    #[test]
    fn encode_decode_network_loop_is_drift_free() {
        // Encoder network -> decoder network: the decoded frames equal
        // the encoder's own reconstructions.
        let (frames, _) = chunks(3);
        let piped = crate::pipeline::run_pipeline(frames.clone(), CodecConfig::default());
        let decoded = run_decoder_pipeline(piped.encoded);
        let golden = encode_sequence(&frames, CodecConfig::default());
        for (d, g) in decoded.frames.iter().zip(&golden) {
            assert_eq!(*d, g.reconstructed);
        }
    }

    #[test]
    fn decoded_quality_is_preserved() {
        let (frames, chunks) = chunks(3);
        let outcome = run_decoder_pipeline(chunks);
        for (orig, dec) in frames.iter().zip(&outcome.frames) {
            assert!(dec.psnr(orig) > 30.0);
        }
    }
}
