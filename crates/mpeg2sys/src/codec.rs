//! The golden straight-line encoder/decoder.
//!
//! A complete (simplified) inter-frame video codec assembled from the
//! functional kernels: motion estimation against the previous
//! reconstructed frame, residual DCT + quantization, Exp-Golomb entropy
//! coding, and an in-loop reconstruction identical on both sides — so
//! decoding is drift-free. The process-network pipeline
//! ([`pipeline`](crate::pipeline)) must produce bit-identical output to
//! this reference.

use crate::bitstream::{BitReader, BitWriter, ReadBitsError};
use crate::dct::{forward_dct, inverse_dct};
use crate::frame::{Block, Frame, BLOCK};
use crate::motion::{compensate, estimate_motion, MotionField, MotionVector};
use crate::quant::{dequantize, quantize};
use crate::vlc::{decode_block, encode_block};

/// Encoder settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Quantizer scale (1 = near lossless, 31 = coarsest).
    pub qscale: u16,
    /// Motion-search window (± pixels).
    pub search_range: i8,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            qscale: 4,
            search_range: 4,
        }
    }
}

/// Result of encoding one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFrame {
    /// The entropy-coded payload.
    pub bytes: Vec<u8>,
    /// The encoder-side reconstruction (the next reference).
    pub reconstructed: Frame,
    /// The motion field that was coded.
    pub motion: MotionField,
}

/// Subtracts `predicted` from `cur` blockwise.
fn residual_block(cur: &Frame, predicted: &Frame, bx: usize, by: usize) -> Block {
    let a = cur.block(bx, by);
    let b = predicted.block(bx, by);
    let mut out = [0i16; BLOCK * BLOCK];
    for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b.iter())) {
        *o = x - y;
    }
    out
}

/// Adds a decoded residual onto the prediction (clamping happens in
/// [`Frame::set_block`]).
fn add_residual(predicted: &Frame, residual: &Block, bx: usize, by: usize) -> Block {
    let p = predicted.block(bx, by);
    let mut out = [0i16; BLOCK * BLOCK];
    for (o, (a, b)) in out.iter_mut().zip(p.iter().zip(residual.iter())) {
        *o = a + b;
    }
    out
}

/// Encodes `cur` against `reference`.
///
/// # Panics
///
/// Panics if the frames have different geometries.
#[must_use]
pub fn encode_frame(cur: &Frame, reference: &Frame, config: CodecConfig) -> EncodedFrame {
    let motion = estimate_motion(cur, reference, config.search_range);
    let predicted = compensate(reference, &motion);
    let mut writer = BitWriter::new();
    writer.put_ue(cur.width() as u32 / 8);
    writer.put_ue(cur.height() as u32 / 8);
    writer.put_ue(u32::from(config.qscale));
    for mv in &motion.vectors {
        writer.put_se(i32::from(mv.dx));
        writer.put_se(i32::from(mv.dy));
    }
    let mut reconstructed = Frame::gray(cur.width(), cur.height());
    for by in 0..cur.blocks_y() {
        for bx in 0..cur.blocks_x() {
            let residual = residual_block(cur, &predicted, bx, by);
            let q = quantize(&forward_dct(&residual), config.qscale);
            encode_block(&mut writer, &q);
            // In-loop reconstruction, shared with the decoder.
            let rec_res = inverse_dct(&dequantize(&q, config.qscale));
            reconstructed.set_block(bx, by, &add_residual(&predicted, &rec_res, bx, by));
        }
    }
    EncodedFrame {
        bytes: writer.into_bytes(),
        reconstructed,
        motion,
    }
}

/// Decodes one frame against `reference`.
///
/// # Errors
///
/// [`ReadBitsError`] if the payload is truncated or malformed.
pub fn decode_frame(bytes: &[u8], reference: &Frame) -> Result<Frame, ReadBitsError> {
    let mut reader = BitReader::new(bytes);
    let bw = reader.get_ue()? as usize;
    let bh = reader.get_ue()? as usize;
    let qscale = u16::try_from(reader.get_ue()?).map_err(|_| ReadBitsError)?;
    if qscale == 0 || bw * 8 != reference.width() || bh * 8 != reference.height() {
        return Err(ReadBitsError);
    }
    let mut vectors = Vec::with_capacity(bw * bh);
    for _ in 0..bw * bh {
        let dx = i8::try_from(reader.get_se()?).map_err(|_| ReadBitsError)?;
        let dy = i8::try_from(reader.get_se()?).map_err(|_| ReadBitsError)?;
        vectors.push(MotionVector { dx, dy });
    }
    let motion = MotionField { vectors };
    let predicted = compensate(reference, &motion);
    let mut out = Frame::gray(reference.width(), reference.height());
    for by in 0..bh {
        for bx in 0..bw {
            let q = decode_block(&mut reader)?;
            let rec_res = inverse_dct(&dequantize(&q, qscale));
            out.set_block(bx, by, &add_residual(&predicted, &rec_res, bx, by));
        }
    }
    Ok(out)
}

/// The deterministic rate-control law shared by the golden encoder and
/// the process-network pipeline: adjust the quantizer scale from the bit
/// cost of the previous frame against a per-frame budget.
#[must_use]
pub fn rate_control_update(qscale: u16, spent_bits: u64, target_bits: u64) -> u16 {
    let next = if spent_bits > target_bits + target_bits / 8 {
        qscale + 2
    } else if spent_bits > target_bits {
        qscale + 1
    } else if spent_bits + target_bits / 8 < target_bits {
        qscale.saturating_sub(1)
    } else {
        qscale
    };
    next.clamp(1, 31)
}

/// Encodes a sequence under closed-loop rate control: the quantizer scale
/// of frame `k` derives from the bits spent on frame `k − 1` via
/// [`rate_control_update`] — the rate-control feedback loop of the
/// MPEG-2 block diagram, in straight-line form.
#[must_use]
pub fn encode_sequence_rate_controlled(
    frames: &[Frame],
    config: CodecConfig,
    target_bits_per_frame: u64,
) -> Vec<EncodedFrame> {
    let mut out = Vec::with_capacity(frames.len());
    let mut reference = match frames.first() {
        Some(f) => Frame::gray(f.width(), f.height()),
        None => return out,
    };
    let mut qscale = config.qscale;
    for frame in frames {
        let encoded = encode_frame(
            frame,
            &reference,
            CodecConfig {
                qscale,
                search_range: config.search_range,
            },
        );
        qscale = rate_control_update(
            qscale,
            encoded.bytes.len() as u64 * 8,
            target_bits_per_frame,
        );
        reference = encoded.reconstructed.clone();
        out.push(encoded);
    }
    out
}

/// Encodes a sequence, starting from a gray reference.
#[must_use]
pub fn encode_sequence(frames: &[Frame], config: CodecConfig) -> Vec<EncodedFrame> {
    let mut out = Vec::with_capacity(frames.len());
    let mut reference = match frames.first() {
        Some(f) => Frame::gray(f.width(), f.height()),
        None => return out,
    };
    for frame in frames {
        let encoded = encode_frame(frame, &reference, config);
        reference = encoded.reconstructed.clone();
        out.push(encoded);
    }
    out
}

/// Decodes a sequence, starting from a gray reference.
///
/// # Errors
///
/// [`ReadBitsError`] on a malformed payload.
pub fn decode_sequence(
    chunks: &[Vec<u8>],
    width: usize,
    height: usize,
) -> Result<Vec<Frame>, ReadBitsError> {
    let mut reference = Frame::gray(width, height);
    let mut out = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let frame = decode_frame(chunk, &reference)?;
        reference = frame.clone();
        out.push(frame);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FUNC_HEIGHT, FUNC_WIDTH};

    fn sequence(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| Frame::synthetic(FUNC_WIDTH, FUNC_HEIGHT, i * 2, i))
            .collect()
    }

    #[test]
    fn decoder_matches_encoder_reconstruction_exactly() {
        let frames = sequence(5);
        let encoded = encode_sequence(&frames, CodecConfig::default());
        let chunks: Vec<Vec<u8>> = encoded.iter().map(|e| e.bytes.clone()).collect();
        let decoded =
            decode_sequence(&chunks, FUNC_WIDTH, FUNC_HEIGHT).expect("well-formed stream");
        for (e, d) in encoded.iter().zip(&decoded) {
            assert_eq!(e.reconstructed, *d, "decoder drifted from the encoder");
        }
    }

    #[test]
    fn reconstruction_quality_is_reasonable() {
        let frames = sequence(4);
        let encoded = encode_sequence(&frames, CodecConfig::default());
        for (orig, enc) in frames.iter().zip(&encoded) {
            let psnr = enc.reconstructed.psnr(orig);
            assert!(psnr > 30.0, "PSNR too low: {psnr:.1} dB");
        }
    }

    #[test]
    fn coarser_quantization_costs_fewer_bits_and_quality() {
        let frames = sequence(3);
        let fine = encode_sequence(
            &frames,
            CodecConfig {
                qscale: 2,
                search_range: 4,
            },
        );
        let coarse = encode_sequence(
            &frames,
            CodecConfig {
                qscale: 24,
                search_range: 4,
            },
        );
        let bits = |e: &[EncodedFrame]| -> usize { e.iter().map(|f| f.bytes.len()).sum() };
        assert!(bits(&coarse) < bits(&fine));
        let last = frames.len() - 1;
        assert!(
            coarse[last].reconstructed.psnr(&frames[last])
                < fine[last].reconstructed.psnr(&frames[last])
        );
    }

    #[test]
    fn motion_makes_inter_frames_cheap() {
        // A pure translation should code much smaller than the first
        // (effectively intra) frame.
        let frames = sequence(3);
        let encoded = encode_sequence(&frames, CodecConfig::default());
        assert!(
            encoded[1].bytes.len() < encoded[0].bytes.len(),
            "inter frame {} >= intra-ish frame {}",
            encoded[1].bytes.len(),
            encoded[0].bytes.len()
        );
    }

    #[test]
    fn rate_control_tracks_the_budget() {
        let frames: Vec<Frame> = (0..10)
            .map(|i| Frame::synthetic(FUNC_WIDTH, FUNC_HEIGHT, i * 5, i * 3))
            .collect();
        // A deliberately tight budget: the controller must raise qscale.
        let open_loop = encode_sequence(
            &frames,
            CodecConfig {
                qscale: 2,
                search_range: 4,
            },
        );
        let open_bits: usize = open_loop.iter().map(|e| e.bytes.len() * 8).sum();
        let budget = (open_bits / frames.len() / 2) as u64;
        let closed = encode_sequence_rate_controlled(
            &frames,
            CodecConfig {
                qscale: 2,
                search_range: 4,
            },
            budget,
        );
        let closed_bits: usize = closed.iter().map(|e| e.bytes.len() * 8).sum();
        assert!(
            closed_bits < open_bits,
            "controller must reduce the bitrate"
        );
        // The closed-loop stream still decodes drift-free.
        let chunks: Vec<Vec<u8>> = closed.iter().map(|e| e.bytes.clone()).collect();
        let decoded = decode_sequence(&chunks, FUNC_WIDTH, FUNC_HEIGHT).expect("valid");
        for (e, d) in closed.iter().zip(&decoded) {
            assert_eq!(e.reconstructed, *d);
        }
    }

    #[test]
    fn rate_update_law_is_clamped_and_monotone() {
        assert_eq!(rate_control_update(31, 10_000, 100), 31);
        assert_eq!(rate_control_update(1, 0, 100), 1);
        assert!(rate_control_update(4, 200, 100) > 4);
        assert!(rate_control_update(4, 10, 100) < 4);
        assert_eq!(rate_control_update(4, 100, 100), 4);
    }

    #[test]
    fn malformed_stream_is_rejected() {
        let garbage = vec![0xFFu8; 4];
        let reference = Frame::gray(FUNC_WIDTH, FUNC_HEIGHT);
        assert!(decode_frame(&garbage, &reference).is_err());
    }

    #[test]
    fn empty_sequence_is_fine() {
        assert!(encode_sequence(&[], CodecConfig::default()).is_empty());
    }
}
