//! Run-length + variable-length coding of quantized coefficient blocks.
//!
//! A zig-zag-scanned block becomes a sequence of `(run, level)` pairs —
//! `run` zero coefficients followed by a non-zero `level` — terminated by
//! an end-of-block marker, each entropy-coded with Exp-Golomb codes. This
//! is a simplified stand-in for MPEG-2's Huffman tables with identical
//! structure (and a strict decode inverse, which the real tables also
//! guarantee).

use crate::bitstream::{BitReader, BitWriter, ReadBitsError};
use crate::frame::{Block, BLOCK};
use crate::zigzag::{zigzag_scan, zigzag_unscan};

/// A run-length pair: `run` zeros followed by `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLevel {
    /// Number of zero coefficients preceding the level.
    pub run: u8,
    /// The non-zero coefficient value.
    pub level: i16,
}

/// Converts a (raster-order) quantized block to run-level pairs in
/// zig-zag order.
///
/// # Examples
///
/// ```
/// use mpeg2sys::run_length_encode;
/// let mut block = [0i16; 64];
/// block[0] = 7;  // DC
/// block[2] = -1; // third zig-zag position is raster index 8... place in raster terms:
/// let pairs = run_length_encode(&block);
/// assert_eq!(pairs[0].run, 0);
/// assert_eq!(pairs[0].level, 7);
/// ```
#[must_use]
pub fn run_length_encode(block: &Block) -> Vec<RunLevel> {
    let scanned = zigzag_scan(block);
    let mut out = Vec::new();
    let mut run = 0u8;
    for &v in &scanned {
        if v == 0 {
            run += 1;
        } else {
            out.push(RunLevel { run, level: v });
            run = 0;
        }
    }
    out
}

/// Reconstructs a raster-order block from run-level pairs.
///
/// # Panics
///
/// Panics if the pairs overflow the 64-coefficient block.
#[must_use]
pub fn run_length_decode(pairs: &[RunLevel]) -> Block {
    let mut scanned = [0i16; BLOCK * BLOCK];
    let mut pos = 0usize;
    for p in pairs {
        pos += usize::from(p.run);
        assert!(pos < BLOCK * BLOCK, "run-level data overflows the block");
        scanned[pos] = p.level;
        pos += 1;
    }
    zigzag_unscan(&scanned)
}

/// Entropy-codes one quantized block into the writer.
pub fn encode_block(writer: &mut BitWriter, block: &Block) {
    for p in run_length_encode(block) {
        writer.put_ue(u32::from(p.run) + 1); // 0 is reserved for EOB
        writer.put_se(i32::from(p.level));
    }
    writer.put_ue(0); // end of block
}

/// Decodes one block from the reader.
///
/// # Errors
///
/// [`ReadBitsError`] on a truncated or corrupt stream.
pub fn decode_block(reader: &mut BitReader<'_>) -> Result<Block, ReadBitsError> {
    let mut pairs = Vec::new();
    loop {
        let marker = reader.get_ue()?;
        if marker == 0 {
            break;
        }
        let run = u8::try_from(marker - 1).map_err(|_| ReadBitsError)?;
        let level = reader.get_se()?;
        let level = i16::try_from(level).map_err(|_| ReadBitsError)?;
        if level == 0 {
            return Err(ReadBitsError); // levels are non-zero by construction
        }
        pairs.push(RunLevel { run, level });
    }
    // Validate total length before reconstructing.
    let total: usize = pairs.iter().map(|p| usize::from(p.run) + 1).sum();
    if total > BLOCK * BLOCK {
        return Err(ReadBitsError);
    }
    Ok(run_length_decode(&pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_block() -> Block {
        let mut b = [0i16; 64];
        b[0] = 12;
        b[1] = -3;
        b[8] = 5;
        b[35] = -1;
        b[63] = 2;
        b
    }

    #[test]
    fn run_length_roundtrip() {
        let b = sparse_block();
        assert_eq!(run_length_decode(&run_length_encode(&b)), b);
    }

    #[test]
    fn all_zero_block_encodes_to_eob_only() {
        let zero = [0i16; 64];
        assert!(run_length_encode(&zero).is_empty());
        let mut w = BitWriter::new();
        encode_block(&mut w, &zero);
        assert_eq!(w.bit_len(), 1, "a zero block costs one EOB bit");
    }

    #[test]
    fn bitstream_roundtrip_over_many_blocks() {
        let blocks: Vec<Block> = (0..20)
            .map(|k| {
                let mut b = [0i16; 64];
                for (i, v) in b.iter_mut().enumerate() {
                    if (i * 7 + k) % 9 == 0 {
                        *v = ((i as i16) - 30) / 3;
                    }
                }
                b
            })
            .collect();
        let mut w = BitWriter::new();
        for b in &blocks {
            encode_block(&mut w, b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for b in &blocks {
            assert_eq!(decode_block(&mut r).expect("well-formed"), *b);
        }
    }

    #[test]
    fn sparser_blocks_cost_fewer_bits() {
        let mut dense = [3i16; 64];
        dense[0] = 50;
        let sparse = sparse_block();
        let bits = |b: &Block| {
            let mut w = BitWriter::new();
            encode_block(&mut w, b);
            w.bit_len()
        };
        assert!(bits(&sparse) < bits(&dense));
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        // A run of 200 overflows the block.
        let mut w = BitWriter::new();
        w.put_ue(201);
        w.put_se(5);
        w.put_ue(0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(decode_block(&mut r).is_err());
    }
}
