//! Table 1 of the paper: the experimental setup of the MPEG-2 encoder.

use crate::paretos::mpeg2_design;
use std::fmt;

/// The quantities Table 1 reports, measured on our reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Number of encoder processes (paper: 26).
    pub processes: usize,
    /// Number of blocking channels among them (paper: 60).
    pub channels: usize,
    /// Total Pareto-optimal implementations (paper: 171).
    pub pareto_points: usize,
    /// Minimum channel latency in cycles (paper range starts at 1).
    pub channel_latency_min: u64,
    /// Maximum channel latency in cycles (paper range ends at 5,280).
    pub channel_latency_max: u64,
    /// Image size (paper: 352×240).
    pub image_size: (u64, u64),
}

impl Table1 {
    /// Measures the reconstruction.
    #[must_use]
    pub fn measure() -> Self {
        let (design, topo) = mpeg2_design();
        let lats: Vec<u64> = topo
            .encoder_channels
            .iter()
            .map(|&c| topo.system.channel(c).latency())
            .collect();
        Table1 {
            processes: crate::topology::Stage::ALL.len(),
            channels: topo.encoder_channels.len(),
            pareto_points: design.pareto_point_count() - 2, // exclude the two single-point testbench sets
            channel_latency_min: lats.iter().copied().min().unwrap_or(0),
            channel_latency_max: lats.iter().copied().max().unwrap_or(0),
            image_size: (crate::topology::FRAME_WIDTH, crate::topology::FRAME_HEIGHT),
        }
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Processes        {:>6}", self.processes)?;
        writeln!(f, "Channels         {:>6}", self.channels)?;
        writeln!(f, "Pareto points    {:>6}", self.pareto_points)?;
        writeln!(
            f,
            "Channel latency  {:>6} .. {} cycles",
            self.channel_latency_min, self.channel_latency_max
        )?;
        write!(
            f,
            "Image size       {}x{} pixels",
            self.image_size.0, self.image_size.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_setup_matches_the_paper() {
        let t = Table1::measure();
        assert_eq!(t.processes, 26);
        assert_eq!(t.channels, 60);
        assert_eq!(t.pareto_points, 171);
        assert_eq!(t.channel_latency_min, 1);
        assert_eq!(t.channel_latency_max, 5_280);
        assert_eq!(t.image_size, (352, 240));
    }

    #[test]
    fn display_renders_all_rows() {
        let text = Table1::measure().to_string();
        assert!(text.contains("Processes"));
        assert!(text.contains("171"));
        assert!(text.contains("352x240"));
    }
}
