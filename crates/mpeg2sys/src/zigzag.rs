//! Zig-zag coefficient scan.
//!
//! Orders the 64 coefficients of a block from low to high frequency so
//! the run-length coder sees long tails of zeros.

use crate::frame::{Block, BLOCK};

/// The classic zig-zag scan order: `ZIGZAG[i]` is the block index read at
/// scan position `i`.
pub const ZIGZAG: [usize; BLOCK * BLOCK] = {
    let mut order = [0usize; BLOCK * BLOCK];
    let mut i = 0usize;
    let mut d = 0usize; // anti-diagonal index 0..15
    while d < 2 * BLOCK - 1 {
        // Walk each anti-diagonal, alternating direction.
        let upwards = d % 2 == 1;
        let mut k = 0usize;
        while k <= d {
            let (x, y) = if upwards { (d - k, k) } else { (k, d - k) };
            if x < BLOCK && y < BLOCK {
                order[i] = y * BLOCK + x;
                i += 1;
            }
            k += 1;
        }
        d += 1;
    }
    order
};

/// Scans a block into zig-zag order.
///
/// # Examples
///
/// ```
/// use mpeg2sys::{zigzag_scan, zigzag_unscan};
/// let mut block = [0i16; 64];
/// block[0] = 5;     // DC
/// block[1] = 3;     // first horizontal AC
/// block[8] = -2;    // first vertical AC
/// let scanned = zigzag_scan(&block);
/// assert_eq!(&scanned[..3], &[5, 3, -2]);
/// assert_eq!(zigzag_unscan(&scanned), block);
/// ```
#[must_use]
pub fn zigzag_scan(block: &Block) -> Block {
    let mut out = [0i16; BLOCK * BLOCK];
    for (i, o) in out.iter_mut().enumerate() {
        *o = block[ZIGZAG[i]];
    }
    out
}

/// Restores a zig-zag-scanned block to raster order.
#[must_use]
pub fn zigzag_unscan(scanned: &Block) -> Block {
    let mut out = [0i16; BLOCK * BLOCK];
    for (i, &v) in scanned.iter().enumerate() {
        out[ZIGZAG[i]] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_a_permutation() {
        let mut seen = [false; 64];
        for &idx in &ZIGZAG {
            assert!(!seen[idx], "index {idx} repeated");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn first_entries_match_the_classic_order() {
        // 0, 1, 8, 16, 9, 2, 3, 10 ... (raster indices).
        assert_eq!(&ZIGZAG[..8], &[0, 1, 8, 16, 9, 2, 3, 10]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn roundtrip_identity() {
        let mut b = [0i16; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as i16) * 3 - 50;
        }
        assert_eq!(zigzag_unscan(&zigzag_scan(&b)), b);
    }

    #[test]
    fn low_frequency_energy_moves_to_the_front() {
        let mut b = [0i16; 64];
        b[0] = 10;
        b[1] = 9;
        b[8] = 8;
        b[9] = 7;
        let s = zigzag_scan(&b);
        assert!(s[..5].iter().filter(|&&v| v != 0).count() == 4);
        assert!(s[5..].iter().all(|&v| v == 0));
    }
}
