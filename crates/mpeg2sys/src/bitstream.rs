//! Bit-granular stream writer and reader.
//!
//! The substrate of the VLC stage: MSB-first bit packing with an explicit
//! byte-aligned flush, plus unsigned/signed Exp-Golomb codes — the
//! variable-length scheme the simplified entropy coder uses.

/// MSB-first bit writer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the current partial byte (0..8).
    fill: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the `count` low bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "at most 32 bits per call");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.fill == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (bit as u8) << (7 - self.fill);
            self.fill = (self.fill + 1) % 8;
        }
    }

    /// Appends an unsigned Exp-Golomb code.
    pub fn put_ue(&mut self, value: u32) {
        let v = value + 1;
        let bits = 32 - v.leading_zeros() as u8;
        self.put_bits(0, bits - 1); // prefix zeros
        self.put_bits(v, bits);
    }

    /// Appends a signed Exp-Golomb code (0, 1, −1, 2, −2, ...).
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-value as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 - usize::from((8 - self.fill) % 8)
    }

    /// Finishes the stream, zero-padding to a byte boundary.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

/// Error returned when a read runs past the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadBitsError;

impl std::fmt::Display for ReadBitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bitstream exhausted")
    }
}

impl std::error::Error for ReadBitsError {}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// [`ReadBitsError`] if fewer than `count` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn get_bits(&mut self, count: u8) -> Result<u32, ReadBitsError> {
        assert!(count <= 32, "at most 32 bits per call");
        if self.pos + usize::from(count) > self.bytes.len() * 8 {
            return Err(ReadBitsError);
        }
        let mut out = 0u32;
        for _ in 0..count {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | u32::from(bit);
            self.pos += 1;
        }
        Ok(out)
    }

    /// Reads an unsigned Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// [`ReadBitsError`] on a truncated stream.
    pub fn get_ue(&mut self) -> Result<u32, ReadBitsError> {
        let mut zeros = 0u8;
        while self.get_bits(1)? == 0 {
            zeros += 1;
            if zeros > 32 {
                return Err(ReadBitsError);
            }
        }
        let rest = self.get_bits(zeros)?;
        Ok(((1u32 << zeros) | rest) - 1)
    }

    /// Reads a signed Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// [`ReadBitsError`] on a truncated stream.
    pub fn get_se(&mut self) -> Result<i32, ReadBitsError> {
        let mapped = self.get_ue()?;
        Ok(if mapped % 2 == 1 {
            (mapped / 2 + 1) as i32
        } else {
            -((mapped / 2) as i32)
        })
    }

    /// Remaining bits.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xFF, 8);
        w.put_bits(0, 2);
        assert_eq!(w.bit_len(), 13);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3), Ok(0b101));
        assert_eq!(r.get_bits(8), Ok(0xFF));
        assert_eq!(r.get_bits(2), Ok(0));
    }

    #[test]
    fn exp_golomb_unsigned_roundtrip() {
        let mut w = BitWriter::new();
        for v in 0..200u32 {
            w.put_ue(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in 0..200u32 {
            assert_eq!(r.get_ue(), Ok(v));
        }
    }

    #[test]
    fn exp_golomb_signed_roundtrip() {
        let mut w = BitWriter::new();
        for v in -100..=100i32 {
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in -100..=100i32 {
            assert_eq!(r.get_se(), Ok(v));
        }
    }

    #[test]
    fn small_codes_are_short() {
        let mut w = BitWriter::new();
        w.put_ue(0);
        assert_eq!(w.bit_len(), 1, "ue(0) is a single bit");
    }

    #[test]
    fn truncated_stream_errors() {
        let bytes = [0b1000_0000u8];
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bits(8).is_ok());
        assert_eq!(r.get_bits(1), Err(ReadBitsError));
    }

    #[test]
    fn reader_tracks_remaining() {
        let bytes = [0u8; 4];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 32);
        let _ = r.get_bits(5);
        assert_eq!(r.remaining(), 27);
    }
}
