//! The MPEG-2 encoder case study of the DAC'14 ERMES paper.
//!
//! Two complementary halves:
//!
//! 1. **The timing model** — the system the paper's Section 6 evaluates:
//!    26 processes / 60 blocking channels ([`build_topology`]), per-stage
//!    Pareto sets totalling 171 implementations ([`stage_pareto`]), and
//!    the M1/M2 anchor designs ([`m1_design`], [`m2_design`]) the
//!    explorations start from. [`Table1`] measures the setup.
//! 2. **The functional kernels** — a working (simplified) inter-frame
//!    video encoder built from real signal-processing code: 8×8 DCT
//!    ([`forward_dct`]), quantization ([`quantize`]), zig-zag scan,
//!    run-length + Exp-Golomb entropy coding, full-search motion
//!    estimation ([`estimate_motion`]) — assembled both as a golden
//!    straight-line codec ([`encode_sequence`]/[`decode_sequence`]) and
//!    as an eight-process blocking network on the [`pnsim`] engine
//!    ([`run_pipeline`]), which must match the golden bitstream exactly.
//!
//! # Examples
//!
//! ```
//! use mpeg2sys::{run_pipeline, encode_sequence, CodecConfig, Frame};
//! use mpeg2sys::frame::{FUNC_WIDTH, FUNC_HEIGHT};
//!
//! let frames: Vec<Frame> = (0..3)
//!     .map(|i| Frame::synthetic(FUNC_WIDTH, FUNC_HEIGHT, i * 2, i))
//!     .collect();
//! let golden = encode_sequence(&frames, CodecConfig::default());
//! let piped = run_pipeline(frames, CodecConfig::default());
//! assert_eq!(piped.encoded[0], golden[0].bytes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;
pub mod codec;
pub mod dct;
pub mod decoder_pipeline;
pub mod frame;
pub mod motion;
pub mod paretos;
pub mod pipeline;
pub mod quant;
pub mod table1;
pub mod topology;
pub mod vlc;
pub mod zigzag;

pub use bitstream::{BitReader, BitWriter, ReadBitsError};
pub use codec::{
    decode_frame, decode_sequence, encode_frame, encode_sequence, encode_sequence_rate_controlled,
    rate_control_update, CodecConfig, EncodedFrame,
};
pub use dct::{forward_dct, inverse_dct};
pub use decoder_pipeline::{run_decoder_pipeline, DecoderOutcome};
pub use frame::{Block, Frame};
pub use motion::{compensate, estimate_motion, MotionField, MotionVector};
pub use paretos::{m1_design, m2_design, mpeg2_design, stage_pareto};
pub use pipeline::{run_pipeline, run_pipeline_rate_controlled, Packet, PipelineOutcome};
pub use quant::{dequantize, quantize, INTRA_MATRIX};
pub use table1::Table1;
pub use topology::{build_topology, Mpeg2Topology, Stage, FRAME_HEIGHT, FRAME_WIDTH, MACROBLOCKS};
pub use vlc::{decode_block, encode_block, run_length_decode, run_length_encode, RunLevel};
pub use zigzag::{zigzag_scan, zigzag_unscan, ZIGZAG};
