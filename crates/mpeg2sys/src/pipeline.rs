//! The functional encoder as a blocking process network.
//!
//! The same codec as [`codec`](crate::codec), but decomposed into eight
//! concurrent processes communicating through blocking rendezvous
//! channels and executed on the [`pnsim`] engine — a working miniature of
//! the paper's MPEG-2 case study, complete with the reconstructed-frame
//! feedback loop (an initialized channel whose reset value is the gray
//! frame). The pipeline's bitstream must equal the golden encoder's
//! byte-for-byte.

use crate::codec::{rate_control_update, CodecConfig};
use crate::dct::{forward_dct, inverse_dct};
use crate::frame::{Block, Frame, BLOCK, FUNC_HEIGHT, FUNC_WIDTH};
use crate::motion::{compensate, estimate_motion, MotionField};
use crate::quant::{dequantize, quantize};
use crate::vlc::encode_block;
use pnsim::{run, FnKernel, Kernel, KernelOutput, SequenceSource, SimConfig};
use sysgraph::SystemGraph;

/// The payload flowing through the functional network.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// A luma frame (source data, predictions, reconstructions).
    Frame(Frame),
    /// A frame's worth of 8×8 blocks (residuals or coefficients).
    Blocks(Vec<Block>),
    /// Quantized coefficients tagged with the quantizer scale that
    /// produced them (rate-controlled pipeline).
    Quantized {
        /// The quantizer scale used.
        qscale: u16,
        /// One block per 8×8 tile.
        blocks: Vec<Block>,
    },
    /// A motion field.
    Motion(MotionField),
    /// Entropy-coded bytes of one frame.
    Bits(Vec<u8>),
    /// A scalar control value (bit budgets, quantizer scales).
    Ctrl(u64),
}

impl Default for Packet {
    /// The reset value of initialized channels: a gray reference frame.
    fn default() -> Self {
        Packet::Frame(Frame::gray(FUNC_WIDTH, FUNC_HEIGHT))
    }
}

impl Packet {
    fn into_frame(self) -> Frame {
        match self {
            Packet::Frame(f) => f,
            other => panic!("expected a frame packet, got {other:?}"),
        }
    }

    fn into_blocks(self) -> Vec<Block> {
        match self {
            Packet::Blocks(b) => b,
            other => panic!("expected a blocks packet, got {other:?}"),
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Entropy-coded frames collected at the sink.
    pub encoded: Vec<Vec<u8>>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// True if the network stalled (must never happen).
    pub deadlocked: bool,
}

/// Splits a frame difference into blocks.
fn residual_blocks(cur: &Frame, predicted: &Frame) -> Vec<Block> {
    let mut out = Vec::with_capacity(cur.blocks_x() * cur.blocks_y());
    for by in 0..cur.blocks_y() {
        for bx in 0..cur.blocks_x() {
            let a = cur.block(bx, by);
            let b = predicted.block(bx, by);
            let mut blk = [0i16; BLOCK * BLOCK];
            for (o, (x, y)) in blk.iter_mut().zip(a.iter().zip(b.iter())) {
                *o = x - y;
            }
            out.push(blk);
        }
    }
    out
}

/// Encodes `frames` through the eight-process network and returns the
/// bitstream per frame.
///
/// # Panics
///
/// Panics if a kernel receives a packet of the wrong kind — which would
/// indicate a wiring bug, not a data condition.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_pipeline(frames: Vec<Frame>, config: CodecConfig) -> PipelineOutcome {
    let n_frames = frames.len() as u64;
    let mut sys = SystemGraph::new();
    let src = sys.add_process("tb_src", 1);
    let pred = sys.add_process("pred", 6);
    let transform = sys.add_process("transform", 4);
    let inv = sys.add_process("inv", 4);
    let recon = sys.add_process("recon", 2);
    let store = sys.add_process("recon_store", 1);
    let coder = sys.add_process("coder", 3);
    let snk = sys.add_process("tb_snk", 1);

    sys.add_channel("cur", src, pred, 2).expect("valid");
    sys.add_channel_with_tokens("ref", store, pred, 2, 1)
        .expect("valid"); // the reconstructed-frame feedback loop
    sys.add_channel("residual", pred, transform, 2)
        .expect("valid");
    sys.add_channel("predicted", pred, recon, 2).expect("valid");
    sys.add_channel("motion", pred, coder, 1).expect("valid");
    sys.add_channel("qcoeffs", transform, coder, 2)
        .expect("valid");
    sys.add_channel("qcoeffs_loop", transform, inv, 2)
        .expect("valid");
    sys.add_channel("rec_residual", inv, recon, 2)
        .expect("valid");
    sys.add_channel("recframe", recon, store, 2).expect("valid");
    sys.add_channel("bits", coder, snk, 2).expect("valid");

    // Deadlock-free, throughput-aware statement orders — the library
    // eating its own dog food.
    let solution = chanorder::order_channels(&sys);
    solution
        .ordering
        .apply_to(&mut sys)
        .expect("algorithm orderings are valid");

    // Kernels, indexed by process id. Input order must match each
    // process's get order, so kernels dispatch on packet kind.
    let order_of = |p: sysgraph::ProcessId| sys.get_order(p).to_vec();
    let _ = order_of; // orders are resolved through packet kinds below

    let qscale = config.qscale;
    let range = config.search_range;

    let kernels: Vec<Box<dyn Kernel<Packet>>> = vec![
        // tb_src
        Box::new(SequenceSource::new(
            frames.into_iter().map(Packet::Frame),
            1,
            1,
        )),
        // pred: (cur, ref) in get order -> dispatch by matching kinds:
        // both are frames, so order matters: the channel-ordering step
        // may have swapped them. We disambiguate positionally from the
        // system's get order captured here.
        {
            let first_is_cur = {
                let gets = sys.get_order(pred);
                sys.channel(gets[0]).name() == "cur"
            };
            let puts: Vec<String> = sys
                .put_order(pred)
                .iter()
                .map(|&c| sys.channel(c).name().to_string())
                .collect();
            Box::new(FnKernel::new(move |inputs: &[Packet]| {
                let (cur, reference) = if first_is_cur {
                    (
                        inputs[0].clone().into_frame(),
                        inputs[1].clone().into_frame(),
                    )
                } else {
                    (
                        inputs[1].clone().into_frame(),
                        inputs[0].clone().into_frame(),
                    )
                };
                let motion = estimate_motion(&cur, &reference, range);
                let predicted = compensate(&reference, &motion);
                let residual = residual_blocks(&cur, &predicted);
                let outputs = puts
                    .iter()
                    .map(|name| match name.as_str() {
                        "residual" => Packet::Blocks(residual.clone()),
                        "predicted" => Packet::Frame(predicted.clone()),
                        "motion" => Packet::Motion(motion.clone()),
                        other => panic!("unexpected pred output {other}"),
                    })
                    .collect();
                KernelOutput {
                    outputs,
                    latency: 6,
                }
            }))
        },
        // transform: residual blocks -> quantized coefficients (to coder
        // and to the reconstruction loop).
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let blocks = inputs[0].clone().into_blocks();
            let q: Vec<Block> = blocks
                .iter()
                .map(|b| quantize(&forward_dct(b), qscale))
                .collect();
            KernelOutput {
                outputs: vec![Packet::Blocks(q.clone()), Packet::Blocks(q)],
                latency: 4,
            }
        })),
        // inv: dequantize + inverse DCT.
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let q = inputs[0].clone().into_blocks();
            let rec: Vec<Block> = q
                .iter()
                .map(|b| inverse_dct(&dequantize(b, qscale)))
                .collect();
            KernelOutput {
                outputs: vec![Packet::Blocks(rec)],
                latency: 4,
            }
        })),
        // recon: predicted frame + reconstructed residual -> frame.
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let (mut predicted, residual) = match (&inputs[0], &inputs[1]) {
                (Packet::Frame(f), Packet::Blocks(b)) => (f.clone(), b.clone()),
                (Packet::Blocks(b), Packet::Frame(f)) => (f.clone(), b.clone()),
                other => panic!("recon got unexpected packets: {other:?}"),
            };
            let bx_count = predicted.blocks_x();
            for (i, blk) in residual.iter().enumerate() {
                let bx = i % bx_count;
                let by = i / bx_count;
                let p = predicted.block(bx, by);
                let mut sum = [0i16; BLOCK * BLOCK];
                for (o, (a, b)) in sum.iter_mut().zip(p.iter().zip(blk.iter())) {
                    *o = a + b;
                }
                predicted.set_block(bx, by, &sum);
            }
            KernelOutput {
                outputs: vec![Packet::Frame(predicted)],
                latency: 2,
            }
        })),
        // store: passes the reconstruction back as the next reference.
        Box::new(FnKernel::new(|inputs: &[Packet]| KernelOutput {
            outputs: vec![inputs[0].clone()],
            latency: 1,
        })),
        // coder: motion field + quantized blocks -> bytes.
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let (motion, blocks) = match (&inputs[0], &inputs[1]) {
                (Packet::Motion(m), Packet::Blocks(b)) => (m.clone(), b.clone()),
                (Packet::Blocks(b), Packet::Motion(m)) => (m.clone(), b.clone()),
                other => panic!("coder got unexpected packets: {other:?}"),
            };
            let mut writer = crate::bitstream::BitWriter::new();
            writer.put_ue(FUNC_WIDTH as u32 / 8);
            writer.put_ue(FUNC_HEIGHT as u32 / 8);
            writer.put_ue(u32::from(qscale));
            for mv in &motion.vectors {
                writer.put_se(i32::from(mv.dx));
                writer.put_se(i32::from(mv.dy));
            }
            for b in &blocks {
                encode_block(&mut writer, b);
            }
            KernelOutput {
                outputs: vec![Packet::Bits(writer.into_bytes())],
                latency: 3,
            }
        })),
        // tb_snk.
        Box::new(FnKernel::new(|_inputs: &[Packet]| KernelOutput {
            outputs: Vec::new(),
            latency: 1,
        })),
    ];

    let (outcome, _) = run(
        &sys,
        kernels,
        SimConfig {
            max_iterations: Some(n_frames),
            record_sink_inputs: true,
            ..SimConfig::default()
        },
    );
    let encoded = outcome
        .sink_inputs
        .first()
        .map(|(_, packets)| {
            packets
                .iter()
                .map(|p| match p {
                    Packet::Bits(b) => b.clone(),
                    other => panic!("sink received non-bits packet: {other:?}"),
                })
                .collect()
        })
        .unwrap_or_default();
    PipelineOutcome {
        encoded,
        cycles: outcome.time,
        deadlocked: outcome.deadlocked,
    }
}

/// Encodes `frames` through the *rate-controlled* network: nine
/// processes, including a rate controller closing a feedback loop from
/// the entropy coder (bits spent) back to the quantizer scale — real
/// control data flowing through an initialized channel. The output must
/// be bit-identical to
/// [`encode_sequence_rate_controlled`](crate::codec::encode_sequence_rate_controlled).
///
/// # Panics
///
/// Panics on kernel/wiring inconsistencies (never on data).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_pipeline_rate_controlled(
    frames: Vec<Frame>,
    config: CodecConfig,
    target_bits_per_frame: u64,
) -> PipelineOutcome {
    let n_frames = frames.len() as u64;
    let mut sys = SystemGraph::new();
    let src = sys.add_process("tb_src", 1);
    let pred = sys.add_process("pred", 6);
    let rate = sys.add_process("rate_ctrl", 1);
    let transform = sys.add_process("transform", 4);
    let inv = sys.add_process("inv", 4);
    let recon = sys.add_process("recon", 2);
    let store = sys.add_process("recon_store", 1);
    let coder = sys.add_process("coder", 3);
    let snk = sys.add_process("tb_snk", 1);

    sys.add_channel("cur", src, pred, 2).expect("valid");
    sys.add_channel_with_tokens("ref", store, pred, 2, 1)
        .expect("valid");
    sys.add_channel("residual", pred, transform, 2)
        .expect("valid");
    sys.add_channel("predicted", pred, recon, 2).expect("valid");
    sys.add_channel("motion", pred, coder, 1).expect("valid");
    sys.add_channel("qset", rate, transform, 1).expect("valid");
    sys.add_channel("qcoeffs", transform, coder, 2)
        .expect("valid");
    sys.add_channel("qcoeffs_loop", transform, inv, 2)
        .expect("valid");
    sys.add_channel("rec_residual", inv, recon, 2)
        .expect("valid");
    sys.add_channel("recframe", recon, store, 2).expect("valid");
    sys.add_channel("bits", coder, snk, 2).expect("valid");
    sys.add_channel_with_tokens("bits_used", coder, rate, 1, 1)
        .expect("valid"); // the rate-control feedback loop

    let solution = chanorder::order_channels(&sys);
    solution
        .ordering
        .apply_to(&mut sys)
        .expect("algorithm orderings are valid");

    let range = config.search_range;
    let initial_qscale = config.qscale;

    let kernels: Vec<Box<dyn Kernel<Packet>>> = vec![
        // tb_src
        Box::new(SequenceSource::new(
            frames.into_iter().map(Packet::Frame),
            1,
            1,
        )),
        // pred (same as the open-loop pipeline).
        {
            let first_is_cur = {
                let gets = sys.get_order(pred);
                sys.channel(gets[0]).name() == "cur"
            };
            let puts: Vec<String> = sys
                .put_order(pred)
                .iter()
                .map(|&c| sys.channel(c).name().to_string())
                .collect();
            Box::new(FnKernel::new(move |inputs: &[Packet]| {
                let (cur, reference) = if first_is_cur {
                    (
                        inputs[0].clone().into_frame(),
                        inputs[1].clone().into_frame(),
                    )
                } else {
                    (
                        inputs[1].clone().into_frame(),
                        inputs[0].clone().into_frame(),
                    )
                };
                let motion = estimate_motion(&cur, &reference, range);
                let predicted = compensate(&reference, &motion);
                let residual = residual_blocks(&cur, &predicted);
                let outputs = puts
                    .iter()
                    .map(|name| match name.as_str() {
                        "residual" => Packet::Blocks(residual.clone()),
                        "predicted" => Packet::Frame(predicted.clone()),
                        "motion" => Packet::Motion(motion.clone()),
                        other => panic!("unexpected pred output {other}"),
                    })
                    .collect();
                KernelOutput {
                    outputs,
                    latency: 6,
                }
            }))
        },
        // rate_ctrl: bits of the previous frame -> qscale for this one.
        {
            let mut qscale = initial_qscale;
            Box::new(FnKernel::new(move |inputs: &[Packet]| {
                if let Packet::Ctrl(spent) = &inputs[0] {
                    qscale = rate_control_update(qscale, *spent, target_bits_per_frame);
                }
                // A non-Ctrl packet is the feedback channel's reset value:
                // frame 0 codes at the initial scale.
                KernelOutput {
                    outputs: vec![Packet::Ctrl(u64::from(qscale))],
                    latency: 1,
                }
            }))
        },
        // transform: residual + qscale -> tagged quantized coefficients.
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let (blocks, qscale) = match (&inputs[0], &inputs[1]) {
                (Packet::Blocks(b), Packet::Ctrl(q)) => (b.clone(), *q as u16),
                (Packet::Ctrl(q), Packet::Blocks(b)) => (b.clone(), *q as u16),
                other => panic!("transform got unexpected packets: {other:?}"),
            };
            let q: Vec<Block> = blocks
                .iter()
                .map(|b| quantize(&forward_dct(b), qscale))
                .collect();
            let tagged = Packet::Quantized { qscale, blocks: q };
            KernelOutput {
                outputs: vec![tagged.clone(), tagged],
                latency: 4,
            }
        })),
        // inv: dequantize at the tagged scale + inverse DCT.
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let Packet::Quantized { qscale, blocks } = &inputs[0] else {
                panic!("inv expected tagged coefficients, got {:?}", inputs[0]);
            };
            let rec: Vec<Block> = blocks
                .iter()
                .map(|b| inverse_dct(&dequantize(b, *qscale)))
                .collect();
            KernelOutput {
                outputs: vec![Packet::Blocks(rec)],
                latency: 4,
            }
        })),
        // recon (same as the open-loop pipeline).
        Box::new(FnKernel::new(move |inputs: &[Packet]| {
            let (mut predicted, residual) = match (&inputs[0], &inputs[1]) {
                (Packet::Frame(f), Packet::Blocks(b)) => (f.clone(), b.clone()),
                (Packet::Blocks(b), Packet::Frame(f)) => (f.clone(), b.clone()),
                other => panic!("recon got unexpected packets: {other:?}"),
            };
            let bx_count = predicted.blocks_x();
            for (i, blk) in residual.iter().enumerate() {
                let bx = i % bx_count;
                let by = i / bx_count;
                let p = predicted.block(bx, by);
                let mut sum = [0i16; BLOCK * BLOCK];
                for (o, (a, b)) in sum.iter_mut().zip(p.iter().zip(blk.iter())) {
                    *o = a + b;
                }
                predicted.set_block(bx, by, &sum);
            }
            KernelOutput {
                outputs: vec![Packet::Frame(predicted)],
                latency: 2,
            }
        })),
        // store.
        Box::new(FnKernel::new(|inputs: &[Packet]| KernelOutput {
            outputs: vec![inputs[0].clone()],
            latency: 1,
        })),
        // coder: motion + tagged coefficients -> bytes + bits-used.
        {
            let puts: Vec<String> = sys
                .put_order(coder)
                .iter()
                .map(|&c| sys.channel(c).name().to_string())
                .collect();
            Box::new(FnKernel::new(move |inputs: &[Packet]| {
                let (motion, qscale, blocks) = match (&inputs[0], &inputs[1]) {
                    (Packet::Motion(m), Packet::Quantized { qscale, blocks }) => {
                        (m.clone(), *qscale, blocks.clone())
                    }
                    (Packet::Quantized { qscale, blocks }, Packet::Motion(m)) => {
                        (m.clone(), *qscale, blocks.clone())
                    }
                    other => panic!("coder got unexpected packets: {other:?}"),
                };
                let mut writer = crate::bitstream::BitWriter::new();
                writer.put_ue(FUNC_WIDTH as u32 / 8);
                writer.put_ue(FUNC_HEIGHT as u32 / 8);
                writer.put_ue(u32::from(qscale));
                for mv in &motion.vectors {
                    writer.put_se(i32::from(mv.dx));
                    writer.put_se(i32::from(mv.dy));
                }
                for b in &blocks {
                    encode_block(&mut writer, b);
                }
                let bytes = writer.into_bytes();
                let spent = bytes.len() as u64 * 8;
                let outputs = puts
                    .iter()
                    .map(|name| match name.as_str() {
                        "bits" => Packet::Bits(bytes.clone()),
                        "bits_used" => Packet::Ctrl(spent),
                        other => panic!("unexpected coder output {other}"),
                    })
                    .collect();
                KernelOutput {
                    outputs,
                    latency: 3,
                }
            }))
        },
        // tb_snk.
        Box::new(FnKernel::new(|_inputs: &[Packet]| KernelOutput {
            outputs: Vec::new(),
            latency: 1,
        })),
    ];

    let (outcome, _) = run(
        &sys,
        kernels,
        SimConfig {
            max_iterations: Some(n_frames),
            record_sink_inputs: true,
            ..SimConfig::default()
        },
    );
    let encoded = outcome
        .sink_inputs
        .first()
        .map(|(_, packets)| {
            packets
                .iter()
                .map(|p| match p {
                    Packet::Bits(b) => b.clone(),
                    other => panic!("sink received non-bits packet: {other:?}"),
                })
                .collect()
        })
        .unwrap_or_default();
    PipelineOutcome {
        encoded,
        cycles: outcome.time,
        deadlocked: outcome.deadlocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_sequence, encode_sequence};

    fn sequence(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| Frame::synthetic(FUNC_WIDTH, FUNC_HEIGHT, i * 3, i))
            .collect()
    }

    #[test]
    fn pipeline_matches_golden_encoder_bit_for_bit() {
        let frames = sequence(4);
        let golden = encode_sequence(&frames, CodecConfig::default());
        let piped = run_pipeline(frames, CodecConfig::default());
        assert!(!piped.deadlocked, "the network must not stall");
        assert_eq!(piped.encoded.len(), golden.len());
        for (i, (a, b)) in piped.encoded.iter().zip(&golden).enumerate() {
            assert_eq!(a, &b.bytes, "frame {i} bitstreams differ");
        }
    }

    #[test]
    fn pipeline_output_decodes_losslessly_against_encoder_recon() {
        let frames = sequence(3);
        let piped = run_pipeline(frames.clone(), CodecConfig::default());
        let decoded =
            decode_sequence(&piped.encoded, FUNC_WIDTH, FUNC_HEIGHT).expect("well-formed stream");
        let golden = encode_sequence(&frames, CodecConfig::default());
        for (d, g) in decoded.iter().zip(&golden) {
            assert_eq!(*d, g.reconstructed);
        }
    }

    #[test]
    fn rate_controlled_pipeline_matches_golden_bit_for_bit() {
        let frames = sequence(6);
        let config = CodecConfig {
            qscale: 2,
            search_range: 4,
        };
        // A budget tight enough to force several qscale updates.
        let probe = crate::codec::encode_sequence(&frames, config);
        let budget =
            (probe.iter().map(|e| e.bytes.len() * 8).sum::<usize>() / frames.len() / 2) as u64;
        let golden = crate::codec::encode_sequence_rate_controlled(&frames, config, budget);
        let piped = run_pipeline_rate_controlled(frames, config, budget);
        assert!(
            !piped.deadlocked,
            "the rate-controlled network must not stall"
        );
        assert_eq!(piped.encoded.len(), golden.len());
        for (i, (a, b)) in piped.encoded.iter().zip(&golden).enumerate() {
            assert_eq!(a, &b.bytes, "frame {i} bitstreams differ");
        }
        // The controller actually moved the quantizer: at least two
        // distinct qscales appear in the headers.
        let scales: std::collections::HashSet<u32> = piped
            .encoded
            .iter()
            .map(|bytes| {
                let mut r = crate::bitstream::BitReader::new(bytes);
                let _ = r.get_ue().expect("width");
                let _ = r.get_ue().expect("height");
                r.get_ue().expect("qscale")
            })
            .collect();
        assert!(scales.len() >= 2, "rate control never acted: {scales:?}");
    }

    #[test]
    fn pipeline_pipelines() {
        // With the feedback token the network overlaps consecutive
        // frames: cycles per frame must be below the full serial sum of
        // all stage latencies plus channel waits for long sequences.
        let frames = sequence(8);
        let piped = run_pipeline(frames, CodecConfig::default());
        assert!(!piped.deadlocked);
        assert!(piped.cycles > 0);
    }
}
