//! Integration: the motivating example reproduces the paper's numbers
//! across every layer of the stack (model, algorithm, execution).

use chanorder::{cycle_time_of, exhaustive_best_ordering, order_channels};
use sysgraph::{chan_index as ci, lower_to_tmg, proc_index as pi, MotivatingExample};
use tmg::Ratio;

#[test]
fn section2_numbers() {
    let ex = MotivatingExample::new();
    assert_eq!(
        ex.system.ordering_space(),
        36,
        "paper: 36 order combinations"
    );

    // The deadlocking order of Section 2.
    let bad = cycle_time_of(&ex.system, &ex.deadlock_ordering()).expect("valid");
    assert!(bad.is_deadlock());

    // The deadlock-free but suboptimal order: throughput 0.05 = 1/20.
    let slow = cycle_time_of(&ex.system, &ex.suboptimal_ordering()).expect("valid");
    assert_eq!(slow.cycle_time(), Some(Ratio::new(20, 1)));
    assert_eq!(slow.throughput(), Some(Ratio::new(1, 20)));

    // The optimum: cycle time 12, i.e. 40% better.
    let fast = cycle_time_of(&ex.system, &ex.optimal_ordering()).expect("valid");
    assert_eq!(fast.cycle_time(), Some(Ratio::new(12, 1)));
}

#[test]
fn section4_algorithm_labels_and_orders() {
    let ex = MotivatingExample::new();
    let solution = order_channels(&ex.system);

    // Fig. 4(b): head weights of arcs e, d, g are 19, 13, 17.
    let hw = |i: usize| solution.head_labels[ex.channels[i].index()].weight;
    assert_eq!((hw(ci::E), hw(ci::D), hw(ci::G)), (19, 13, 17));
    // Tail weights of arcs b, d, f are 16, 10, 13.
    let tw = |i: usize| solution.tail_labels[ex.channels[i].index()].weight;
    assert_eq!((tw(ci::B), tw(ci::D), tw(ci::F)), (16, 10, 13));

    // Final ordering: P6 reads d, then g, then e; P2 writes b, then f,
    // then d.
    let gets: Vec<&str> = solution
        .ordering
        .gets(ex.processes[pi::P6])
        .iter()
        .map(|c| ex.system.channel(*c).name())
        .collect();
    assert_eq!(gets, vec!["d", "g", "e"]);
    let puts: Vec<&str> = solution
        .ordering
        .puts(ex.processes[pi::P2])
        .iter()
        .map(|c| ex.system.channel(*c).name())
        .collect();
    assert_eq!(puts, vec!["b", "f", "d"]);

    // The algorithm's order achieves the exhaustive optimum.
    let achieved = cycle_time_of(&ex.system, &solution.ordering)
        .expect("valid")
        .cycle_time()
        .expect("live");
    let best = exhaustive_best_ordering(&ex.system, 100).expect("small space");
    assert_eq!(achieved, best.best_cycle_time);
    assert_eq!(achieved, Ratio::new(12, 1));
}

#[test]
fn model_execution_agreement_on_all_three_orderings() {
    // Deadlock order: both model and execution hang.
    let ex = MotivatingExample::new();
    assert!(tmg::analyze(lower_to_tmg(&ex.system).tmg()).is_deadlock());
    assert!(pnsim::simulate_timing(&ex.system, 20).deadlocked);

    // Live orders: simulated steady state equals the analytic cycle time.
    for (ordering, expected) in [
        (ex.suboptimal_ordering(), 20.0),
        (ex.optimal_ordering(), 12.0),
    ] {
        let mut sys = ex.system.clone();
        ordering.apply_to(&mut sys).expect("valid");
        let analytic = tmg::analyze(lower_to_tmg(&sys).tmg())
            .cycle_time()
            .expect("live")
            .to_f64();
        assert!((analytic - expected).abs() < 1e-12);
        let simulated = pnsim::simulate_timing(&sys, 400)
            .estimated_cycle_time()
            .expect("live");
        assert!(
            (simulated - expected).abs() < 1e-9,
            "simulated {simulated} vs expected {expected}"
        );
    }
}

#[test]
fn fsm_structure_matches_listing_1() {
    let ex = MotivatingExample::new();
    let fsm = pnsim::process_fsm(&ex.system, ex.processes[pi::P2]);
    assert_eq!(fsm.io_state_count(), 4, "1 get + 3 puts");
    assert_eq!(fsm.compute_state_count(), 5, "latency 5 chain");
}
