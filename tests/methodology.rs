//! Integration: the methodology on generated benchmarks — the full
//! order → analyze → select → repeat loop, validated by execution.

use ermes::{explore, Design, ExplorationConfig, OptStrategy};
use socgen::{generate, SocGenConfig};
use sysgraph::lower_to_tmg;

#[test]
fn exploration_improves_generated_benchmarks() {
    for seed in 0..4u64 {
        let soc = generate(SocGenConfig::sized(60, 100, seed));
        let design = Design::new(soc.system, soc.pareto).expect("sizes match");
        // Find the post-reordering baseline, then ask for 30% better.
        let mut probe = design.clone();
        let solution = chanorder::order_channels(probe.system());
        solution
            .ordering
            .apply_to(probe.system_mut())
            .expect("valid");
        let baseline = ermes::analyze_design(&probe)
            .cycle_time()
            .expect("live")
            .to_f64();
        let target = (baseline * 0.7) as u64;
        let trace =
            explore(design, ExplorationConfig::with_target(target)).expect("exploration runs");
        assert!(
            trace.best().cycle_time.to_f64() <= baseline,
            "seed {seed}: exploration regressed"
        );
    }
}

#[test]
fn greedy_and_exact_strategies_agree_on_feasibility() {
    let soc = generate(SocGenConfig::sized(30, 50, 9));
    let baseline = {
        let mut sys = soc.system.clone();
        chanorder::order_channels(&sys)
            .ordering
            .apply_to(&mut sys)
            .expect("valid");
        tmg::analyze(lower_to_tmg(&sys).tmg())
            .cycle_time()
            .expect("live")
            .to_f64()
    };
    let target = (baseline * 0.8) as u64;
    for strategy in [OptStrategy::Exact, OptStrategy::Greedy] {
        let design = Design::new(soc.system.clone(), soc.pareto.clone()).expect("sizes");
        let trace = explore(
            design,
            ExplorationConfig {
                max_iterations: 8,
                strategy,
                ..ExplorationConfig::with_target(target)
            },
        )
        .expect("runs");
        assert!(
            trace.best().meets_target,
            "{strategy:?} failed to reach an easy target"
        );
    }
}

#[test]
fn optimized_systems_execute_at_the_predicted_rate() {
    let soc = generate(SocGenConfig::sized(40, 70, 5));
    let design = Design::new(soc.system, soc.pareto).expect("sizes");
    let trace = explore(design, ExplorationConfig::with_target(1)).expect("runs");
    // Target 1 is unreachable; the design settles at its fastest point.
    let analytic = trace.best().cycle_time.to_f64();
    let outcome = pnsim::simulate_timing(trace.design.system(), 200);
    assert!(!outcome.deadlocked);
    let simulated = outcome.estimated_cycle_time().expect("live");
    assert!(
        (simulated - analytic).abs() <= analytic * 0.02 + 0.5,
        "simulated {simulated} vs analytic {analytic}"
    );
}

#[test]
fn howard_and_parametric_agree_at_benchmark_scale() {
    let soc = generate(SocGenConfig::sized(150, 260, 17));
    let mut sys = soc.system;
    chanorder::order_channels(&sys)
        .ordering
        .apply_to(&mut sys)
        .expect("valid");
    let lowered = lower_to_tmg(&sys);
    let a = tmg::analyze(lowered.tmg());
    let b = tmg::analyze_parametric(lowered.tmg());
    assert_eq!(a.cycle_time(), b.cycle_time());
}

#[test]
fn conservative_ordering_never_deadlocks_across_seeds() {
    for seed in 0..8u64 {
        let soc = generate(SocGenConfig::sized(50, 90, seed));
        let ordering = chanorder::conservative_ordering(&soc.system);
        let verdict = chanorder::cycle_time_of(&soc.system, &ordering).expect("valid");
        assert!(!verdict.is_deadlock(), "seed {seed}");
    }
}
