//! Integration: the MPEG-2 case study — Table 1, the M1/M2 anchors, both
//! Fig. 6 explorations, and the functional pipeline.

use ermes::{analyze_design, explore, ExplorationConfig, StepAction};
use mpeg2sys::frame::{FUNC_HEIGHT, FUNC_WIDTH};
use mpeg2sys::{
    decode_sequence, encode_sequence, m1_design, m2_design, run_pipeline, CodecConfig, Frame,
    Table1,
};

#[test]
fn table1_matches_the_paper() {
    let t = Table1::measure();
    assert_eq!(t.processes, 26);
    assert_eq!(t.channels, 60);
    assert_eq!(t.pareto_points, 171);
    assert_eq!((t.channel_latency_min, t.channel_latency_max), (1, 5_280));
    assert_eq!(t.image_size, (352, 240));
}

#[test]
fn anchors_reproduce_the_paper_scale() {
    // Paper: M1 = 1,906 KCycles at 2.267 mm²; M2 = 3,597 KCycles at
    // 1.562 mm². Our reconstruction must land within 10% on every axis
    // and preserve the ordering between the two.
    let (m1, _) = m1_design();
    let (m2, _) = m2_design();
    let ct1 = analyze_design(&m1).cycle_time().expect("live").to_f64();
    let ct2 = analyze_design(&m2).cycle_time().expect("live").to_f64();
    assert!(
        (ct1 - 1_906_000.0).abs() / 1_906_000.0 < 0.10,
        "M1 CT {ct1}"
    );
    assert!(
        (ct2 - 3_597_000.0).abs() / 3_597_000.0 < 0.10,
        "M2 CT {ct2}"
    );
    assert!(
        (m1.area() - 2.267).abs() / 2.267 < 0.10,
        "M1 area {}",
        m1.area()
    );
    assert!(
        (m2.area() - 1.562).abs() / 1.562 < 0.10,
        "M2 area {}",
        m2.area()
    );
    assert!(ct1 < ct2 && m1.area() > m2.area());
}

#[test]
fn m1_reordering_preserves_performance_at_zero_area() {
    // On our reconstruction the M1 critical cycle is the single-buffered
    // reference-frame loop, whose cycle ratio is ordering-insensitive:
    // the algorithm must match the conservative order (within 1%) while
    // never touching the area. The ordering algorithm's value on this
    // system is deadlock avoidance (random orders overwhelmingly hang;
    // see the E6 experiment), not cycle-time gain.
    let (mut design, _) = m1_design();
    chanorder::conservative_ordering(design.system())
        .apply_to(design.system_mut())
        .expect("valid");
    let area_before = design.area();
    let (before, after) = ermes::reordering_gain(&mut design).expect("live");
    let rel = (after.to_f64() - before.to_f64()) / before.to_f64();
    assert!(
        rel.abs() < 0.01,
        "reordering changed CT by {:.3}%",
        rel * 100.0
    );
    assert_eq!(design.area(), area_before, "no area change");
}

#[test]
fn fig6_timing_exploration_shape() {
    // TCT = 2,000 KCycles from M2 (violating): the first iteration must
    // be a timing optimization that meets the target at increased area —
    // the paper's "immediately generates a new implementation that meets
    // the target cycle time while increasing the area".
    let (design, _) = m2_design();
    let initial_area = design.area();
    let trace = explore(design, ExplorationConfig::with_target(2_000_000)).expect("explores");
    assert!(!trace.iterations[0].meets_target);
    assert_eq!(trace.iterations[1].action, StepAction::TimingOptimization);
    assert!(trace.iterations[1].meets_target);
    assert!(trace.iterations[1].area > initial_area);
    // The final (best) point meets the target with a real speed-up.
    assert!(trace.best().meets_target);
    assert!(trace.speedup() > 1.5, "speed-up {:.2}", trace.speedup());
}

#[test]
fn fig6_area_exploration_shape() {
    // TCT = 4,000 KCycles from M2 (already met): area recovery must cut
    // the area substantially while the best point still meets the target.
    let (design, _) = m2_design();
    let trace = explore(design, ExplorationConfig::with_target(4_000_000)).expect("explores");
    assert!(trace.iterations[0].meets_target);
    assert_eq!(trace.iterations[1].action, StepAction::AreaRecovery);
    assert!(trace.best().meets_target);
    assert!(
        trace.area_change() < -0.10,
        "area change {:.3} not a recovery",
        trace.area_change()
    );
}

#[test]
fn functional_pipeline_equals_golden_and_decodes() {
    let frames: Vec<Frame> = (0..5)
        .map(|i| Frame::synthetic(FUNC_WIDTH, FUNC_HEIGHT, i * 2, i))
        .collect();
    let config = CodecConfig::default();
    let golden = encode_sequence(&frames, config);
    let piped = run_pipeline(frames.clone(), config);
    assert!(!piped.deadlocked);
    for (a, b) in piped.encoded.iter().zip(&golden) {
        assert_eq!(*a, b.bytes, "network and golden bitstreams differ");
    }
    let decoded = decode_sequence(&piped.encoded, FUNC_WIDTH, FUNC_HEIGHT).expect("valid");
    for (orig, dec) in frames.iter().zip(&decoded) {
        assert!(dec.psnr(orig) > 30.0, "quality collapsed");
    }
}

#[test]
fn mpeg2_timing_model_agrees_with_execution() {
    // Simulate the full 26-process system and compare against the TMG
    // cycle time — the Section 3 validation at case-study scale.
    let (mut design, _) = m2_design();
    let solution = chanorder::order_channels(design.system());
    solution
        .ordering
        .apply_to(design.system_mut())
        .expect("valid");
    let analytic = analyze_design(&design).cycle_time().expect("live").to_f64();
    let outcome = pnsim::simulate_timing(design.system(), 60);
    let simulated = outcome.estimated_cycle_time().expect("live");
    assert!(
        (simulated - analytic).abs() <= analytic * 0.02,
        "simulated {simulated} vs analytic {analytic}"
    );
}
