//! Umbrella library of the ERMES reproduction workspace.
//!
//! Re-exports the member crates under one roof so examples and
//! integration tests can name everything through a single dependency.
//! The real functionality lives in the crates:
//!
//! - [`tmg`] — timed marked graphs and exact cycle-time analysis;
//! - [`sysgraph`] — the system-level SoC model and its TMG lowering;
//! - [`pnsim`] — the cycle-accurate blocking-rendezvous simulator;
//! - [`hlsim`] — the HLS surrogate (knobs, cost model, Pareto fronts);
//! - [`ilp`] — from-scratch 0/1 ILP and knapsack solvers;
//! - [`chanorder`] — the channel-ordering algorithm (Algorithm 1);
//! - [`ermes`] — the design methodology (Fig. 5 loop);
//! - [`mpeg2sys`] — the MPEG-2 case study (timing + functional);
//! - [`socgen`] — synthetic scalability benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use chanorder;
pub use ermes;
pub use hlsim;
pub use ilp;
pub use mpeg2sys;
pub use pnsim;
pub use socgen;
pub use sysgraph;
pub use tmg;

/// Workspace version, for the examples' banners.
#[must_use]
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::version().is_empty());
    }
}
